//! The pre-batching execution path, preserved verbatim: one fresh tape per
//! sample, parameters re-cloned onto the tape for every forward pass, edge
//! lists re-cloned out of the [`RelationalGraph`] on every call, concat-based
//! attention logits, a clone-heavy backward walk, the pre-blocking `ikj`
//! matmul kernel, and rayon fan-out over mini-batches with hand-averaged
//! gradients. The private [`legacy`] sub-module vendors the original tape
//! implementation so this baseline keeps paying the original costs even as
//! `pg_tensor::Tape` evolves.
//!
//! It exists for two reasons:
//!
//! * **golden equivalence** — the batched pipeline
//!   ([`crate::train::train_prepared`], [`ParaGraphModel::forward_batched`])
//!   is pinned against these functions to 1e-5 by
//!   `tests/batched_equivalence.rs`;
//! * **benchmark baseline** — `crates/bench/benches/gnn_training.rs` measures
//!   the batched path's speedup over this one and records it in
//!   `BENCH_gnn.json`.
//!
//! Nothing in the serving or training path calls into this module.

use crate::model::{GraphSample, ParaGraphModel};
use crate::rgat::{RgatLayer, ATTENTION_LEAKY_SLOPE};
use crate::train::{
    summarize, EpochStats, PredictionRecord, PreparedDataset, TrainConfig, TrainError,
    TrainedOutcome, TrainingHistory,
};
use legacy::{Tape, Var};
use paragraph_core::RelationalGraph;
use pg_tensor::{Adam, AdamConfig, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

mod legacy {
    //! The original reverse-mode tape, vendored from the pre-batching
    //! `pg_tensor::autograd`: per-op `Vec` index clones, `Option<Matrix>`
    //! gradients materialised by cloning, a backward walk that clones every
    //! value, op and upstream gradient it touches, hash-map segment
    //! reductions, and the plain row-parallel `ikj` matmul kernel.

    use pg_tensor::Matrix;
    use rayon::prelude::*;
    use std::collections::HashMap;

    const PAR_MATMUL_THRESHOLD: usize = 64 * 64 * 64;

    /// The pre-blocking matmul: accumulating `ikj` over full rows.
    fn matmul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
        assert_eq!(lhs.cols(), rhs.rows(), "legacy matmul shape mismatch");
        let m = lhs.rows();
        let k = lhs.cols();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);

        let work = m * k * n;
        let rhs_data = rhs.as_slice();
        let compute_row = |row_a: &[f32], row_out: &mut [f32]| {
            for (kk, &a) in row_a.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs_data[kk * n..(kk + 1) * n];
                for (o, &b) in row_out.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        };

        if work >= PAR_MATMUL_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .zip(lhs.as_slice().par_chunks(k))
                .for_each(|(row_out, row_a)| compute_row(row_a, row_out));
        } else {
            for (row_out, row_a) in out
                .as_mut_slice()
                .chunks_mut(n)
                .zip(lhs.as_slice().chunks(k))
            {
                compute_row(row_a, row_out);
            }
        }
        out
    }

    /// Handle to a value on a [`Tape`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Var(usize);

    #[derive(Debug, Clone)]
    enum Op {
        Leaf,
        MatMul(usize, usize),
        Add(usize, usize),
        AddRowBroadcast(usize, usize),
        Relu(usize),
        LeakyRelu(usize, f32),
        ConcatCols(usize, usize),
        GatherRows(usize, Vec<usize>),
        ScatterAddRows(usize, Vec<usize>, usize),
        SegmentSoftmax { logits: usize, segments: Vec<usize> },
        MulColBroadcast(usize, usize),
        MeanRows(usize),
        MseLoss { pred: usize, target: Vec<f32> },
    }

    #[derive(Debug, Clone)]
    struct Node {
        value: Matrix,
        grad: Option<Matrix>,
        op: Op,
    }

    /// The original per-sample tape (the op set trimmed to what the model's
    /// forward pass records).
    #[derive(Debug, Default, Clone)]
    pub struct Tape {
        nodes: Vec<Node>,
    }

    impl Tape {
        pub fn new() -> Self {
            Self { nodes: Vec::new() }
        }

        fn push(&mut self, value: Matrix, op: Op) -> Var {
            self.nodes.push(Node {
                value,
                grad: None,
                op,
            });
            Var(self.nodes.len() - 1)
        }

        pub fn leaf(&mut self, value: Matrix) -> Var {
            self.push(value, Op::Leaf)
        }

        pub fn value(&self, v: Var) -> &Matrix {
            &self.nodes[v.0].value
        }

        pub fn grad(&self, v: Var) -> Matrix {
            let node = &self.nodes[v.0];
            node.grad
                .clone()
                .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
        }

        pub fn matmul(&mut self, a: Var, b: Var) -> Var {
            let value = matmul(&self.nodes[a.0].value, &self.nodes[b.0].value);
            self.push(value, Op::MatMul(a.0, b.0))
        }

        pub fn add(&mut self, a: Var, b: Var) -> Var {
            let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
            self.push(value, Op::Add(a.0, b.0))
        }

        pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
            let value = self.nodes[a.0]
                .value
                .add_row_broadcast(&self.nodes[bias.0].value);
            self.push(value, Op::AddRowBroadcast(a.0, bias.0))
        }

        pub fn relu(&mut self, a: Var) -> Var {
            let value = self.nodes[a.0].value.map(|v| v.max(0.0));
            self.push(value, Op::Relu(a.0))
        }

        pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
            let value = self.nodes[a.0]
                .value
                .map(|v| if v > 0.0 { v } else { slope * v });
            self.push(value, Op::LeakyRelu(a.0, slope))
        }

        pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
            let value = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
            self.push(value, Op::ConcatCols(a.0, b.0))
        }

        pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
            let value = self.nodes[a.0].value.gather_rows(indices);
            self.push(value, Op::GatherRows(a.0, indices.to_vec()))
        }

        pub fn scatter_add_rows(&mut self, a: Var, indices: &[usize], out_rows: usize) -> Var {
            let value = self.nodes[a.0].value.scatter_add_rows(indices, out_rows);
            self.push(value, Op::ScatterAddRows(a.0, indices.to_vec(), out_rows))
        }

        pub fn segment_softmax(&mut self, logits: Var, segments: &[usize], priors: &[f32]) -> Var {
            let l = &self.nodes[logits.0].value;
            let value = segment_softmax_forward(l, segments, priors);
            self.push(
                value,
                Op::SegmentSoftmax {
                    logits: logits.0,
                    segments: segments.to_vec(),
                },
            )
        }

        pub fn mul_col_broadcast(&mut self, a: Var, s: Var) -> Var {
            let value = self.nodes[a.0]
                .value
                .mul_col_broadcast(&self.nodes[s.0].value);
            self.push(value, Op::MulColBroadcast(a.0, s.0))
        }

        pub fn mean_rows(&mut self, a: Var) -> Var {
            let value = self.nodes[a.0].value.mean_rows();
            self.push(value, Op::MeanRows(a.0))
        }

        pub fn mse_loss(&mut self, pred: Var, target: &[f32]) -> Var {
            let p = &self.nodes[pred.0].value;
            let mse = p
                .as_slice()
                .iter()
                .zip(target.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / target.len().max(1) as f32;
            let value = Matrix::from_vec(1, 1, vec![mse]);
            self.push(
                value,
                Op::MseLoss {
                    pred: pred.0,
                    target: target.to_vec(),
                },
            )
        }

        fn accumulate(&mut self, idx: usize, delta: &Matrix) {
            let node = &mut self.nodes[idx];
            match &mut node.grad {
                Some(g) => g.add_assign(delta),
                None => node.grad = Some(delta.clone()),
            }
        }

        pub fn backward(&mut self, output: Var) {
            for node in &mut self.nodes {
                node.grad = None;
            }
            self.nodes[output.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

            for i in (0..=output.0).rev() {
                let Some(grad_out) = self.nodes[i].grad.clone() else {
                    continue;
                };
                let op = self.nodes[i].op.clone();
                match op {
                    Op::Leaf => {}
                    Op::MatMul(a, b) => {
                        let a_val = self.nodes[a].value.clone();
                        let b_val = self.nodes[b].value.clone();
                        let da = matmul(&grad_out, &b_val.transpose());
                        let db = matmul(&a_val.transpose(), &grad_out);
                        self.accumulate(a, &da);
                        self.accumulate(b, &db);
                    }
                    Op::Add(a, b) => {
                        self.accumulate(a, &grad_out);
                        self.accumulate(b, &grad_out);
                    }
                    Op::AddRowBroadcast(a, bias) => {
                        self.accumulate(a, &grad_out);
                        let db = grad_out.sum_rows();
                        self.accumulate(bias, &db);
                    }
                    Op::Relu(a) => {
                        let mask = self.nodes[a].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                        self.accumulate(a, &grad_out.hadamard(&mask));
                    }
                    Op::LeakyRelu(a, slope) => {
                        let mask = self.nodes[a]
                            .value
                            .map(|v| if v > 0.0 { 1.0 } else { slope });
                        self.accumulate(a, &grad_out.hadamard(&mask));
                    }
                    Op::ConcatCols(a, b) => {
                        let a_cols = self.nodes[a].value.cols();
                        let rows = grad_out.rows();
                        let mut da = Matrix::zeros(rows, a_cols);
                        let mut db = Matrix::zeros(rows, grad_out.cols() - a_cols);
                        for r in 0..rows {
                            da.row_mut(r).copy_from_slice(&grad_out.row(r)[..a_cols]);
                            db.row_mut(r).copy_from_slice(&grad_out.row(r)[a_cols..]);
                        }
                        self.accumulate(a, &da);
                        self.accumulate(b, &db);
                    }
                    Op::GatherRows(a, indices) => {
                        let rows = self.nodes[a].value.rows();
                        let da = grad_out.scatter_add_rows(&indices, rows);
                        self.accumulate(a, &da);
                    }
                    Op::ScatterAddRows(a, indices, _out_rows) => {
                        let da = grad_out.gather_rows(&indices);
                        self.accumulate(a, &da);
                    }
                    Op::SegmentSoftmax { logits, segments } => {
                        let alpha = self.nodes[i].value.clone();
                        let e = alpha.rows();
                        let mut seg_dot: HashMap<usize, f32> = HashMap::new();
                        for (k, &seg) in segments.iter().enumerate().take(e) {
                            *seg_dot.entry(seg).or_insert(0.0) +=
                                grad_out.get(k, 0) * alpha.get(k, 0);
                        }
                        let mut dl = Matrix::zeros(e, 1);
                        for k in 0..e {
                            let dot = seg_dot[&segments[k]];
                            dl.set(k, 0, alpha.get(k, 0) * (grad_out.get(k, 0) - dot));
                        }
                        self.accumulate(logits, &dl);
                    }
                    Op::MulColBroadcast(a, s) => {
                        let a_val = self.nodes[a].value.clone();
                        let s_val = self.nodes[s].value.clone();
                        let da = grad_out.mul_col_broadcast(&s_val);
                        let mut ds = Matrix::zeros(s_val.rows(), 1);
                        for r in 0..a_val.rows() {
                            let dot: f32 = grad_out
                                .row(r)
                                .iter()
                                .zip(a_val.row(r).iter())
                                .map(|(&g, &av)| g * av)
                                .sum();
                            ds.set(r, 0, dot);
                        }
                        self.accumulate(a, &da);
                        self.accumulate(s, &ds);
                    }
                    Op::MeanRows(a) => {
                        let rows = self.nodes[a].value.rows().max(1);
                        let scale = 1.0 / rows as f32;
                        let mut da =
                            Matrix::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                        for r in 0..da.rows() {
                            for c in 0..da.cols() {
                                da.set(r, c, grad_out.get(0, c) * scale);
                            }
                        }
                        self.accumulate(a, &da);
                    }
                    Op::MseLoss { pred, target } => {
                        let g = grad_out.get(0, 0);
                        let p = self.nodes[pred].value.clone();
                        let n = target.len().max(1) as f32;
                        let mut dp = Matrix::zeros(p.rows(), p.cols());
                        for (idx, (&pv, &tv)) in p.as_slice().iter().zip(target.iter()).enumerate()
                        {
                            dp.as_mut_slice()[idx] = g * 2.0 * (pv - tv) / n;
                        }
                        self.accumulate(pred, &dp);
                    }
                }
            }
        }
    }

    /// The original hash-map segment softmax forward.
    fn segment_softmax_forward(logits: &Matrix, segments: &[usize], priors: &[f32]) -> Matrix {
        let e = logits.rows();
        let mut out = Matrix::zeros(e, 1);
        if e == 0 {
            return out;
        }
        let mut seg_max: HashMap<usize, f32> = HashMap::new();
        for (i, &seg) in segments.iter().enumerate().take(e) {
            let entry = seg_max.entry(seg).or_insert(f32::NEG_INFINITY);
            *entry = entry.max(logits.get(i, 0));
        }
        let mut seg_sum: HashMap<usize, f32> = HashMap::new();
        let mut numerators = vec![0.0f32; e];
        for i in 0..e {
            let m = seg_max[&segments[i]];
            let w = priors[i].max(1e-12);
            let num = w * (logits.get(i, 0) - m).exp();
            numerators[i] = num;
            *seg_sum.entry(segments[i]).or_insert(0.0) += num;
        }
        for i in 0..e {
            let denom = seg_sum[&segments[i]].max(1e-20);
            out.set(i, 0, numerators[i] / denom);
        }
        out
    }
}

/// Legacy per-relation RGAT convolution: gather both endpoints, project each
/// through `W`, concatenate, and run the joint attention vector over the
/// `E x 2H` concatenation.
fn layer_forward(
    layer: &RgatLayer,
    tape: &mut Tape,
    h: Var,
    params: &[Var],
    relations: &[(Vec<usize>, Vec<usize>, Vec<f32>)],
    node_count: usize,
) -> Var {
    let r = layer.num_relations();
    let w_rel = &params[0..r];
    let a_rel = &params[r..2 * r];
    let w_self = params[2 * r];
    let bias = params[2 * r + 1];

    let mut agg = tape.matmul(h, w_self);
    for (rel_idx, (src, dst, priors)) in relations.iter().enumerate() {
        if src.is_empty() {
            continue;
        }
        let hs = tape.gather_rows(h, src);
        let hd = tape.gather_rows(h, dst);
        let ms = tape.matmul(hs, w_rel[rel_idx]);
        let md = tape.matmul(hd, w_rel[rel_idx]);
        let cat = tape.concat_cols(ms, md);
        let raw_logits = tape.matmul(cat, a_rel[rel_idx]);
        let logits = tape.leaky_relu(raw_logits, ATTENTION_LEAKY_SLOPE);
        let alpha = tape.segment_softmax(logits, dst, priors);
        let prior_col = tape.leaf(Matrix::col_vector(priors));
        let messages = tape.mul_col_broadcast(ms, alpha);
        let messages = tape.mul_col_broadcast(messages, prior_col);
        let rel_agg = tape.scatter_add_rows(messages, dst, node_count);
        agg = tape.add(agg, rel_agg);
    }
    let with_bias = tape.add_row_broadcast(agg, bias);
    tape.relu(with_bias)
}

/// Legacy whole-model forward: parameters cloned to leaves, features
/// flattened and edge lists cloned out of the graph on every call.
fn forward_parts(
    model: &ParaGraphModel,
    tape: &mut Tape,
    graph: &RelationalGraph,
    side: [f32; 2],
    target: Option<f32>,
) -> (Var, Option<Var>, Vec<Var>) {
    let param_vars: Vec<Var> = model
        .parameters()
        .iter()
        .map(|p| tape.leaf((*p).clone()))
        .collect();

    let n = graph.node_count.max(1);
    let feat_dim = model.config.input_dim;
    let mut feature_data = Vec::with_capacity(n * feat_dim);
    for row in &graph.features {
        feature_data.extend_from_slice(row);
    }
    let features = Matrix::from_vec(graph.features.len(), feat_dim, feature_data);
    let mut h = tape.leaf(features);

    let relations: Vec<(Vec<usize>, Vec<usize>, Vec<f32>)> = graph
        .relations
        .iter()
        .enumerate()
        .map(|(idx, rel)| {
            (
                rel.src.clone(),
                rel.dst.clone(),
                graph.attention_priors(idx),
            )
        })
        .collect();

    let mut offset = 0;
    for layer in &model.rgat {
        let count = layer.parameter_count();
        let layer_params = &param_vars[offset..offset + count];
        h = layer_forward(layer, tape, h, layer_params, &relations, n);
        offset += count;
    }

    let graph_embedding = tape.mean_rows(h);

    let side_w = param_vars[offset];
    let side_b = param_vars[offset + 1];
    let head1_w = param_vars[offset + 2];
    let head1_b = param_vars[offset + 3];
    let head2_w = param_vars[offset + 4];
    let head2_b = param_vars[offset + 5];

    let side_input = tape.leaf(Matrix::row_vector(&side));
    let side_proj = tape.matmul(side_input, side_w);
    let side_proj = tape.add_row_broadcast(side_proj, side_b);
    let side_embedding = tape.relu(side_proj);

    let z = tape.concat_cols(graph_embedding, side_embedding);
    let h1 = tape.matmul(z, head1_w);
    let h1 = tape.add_row_broadcast(h1, head1_b);
    let h1 = tape.relu(h1);
    let out = tape.matmul(h1, head2_w);
    let prediction = tape.add_row_broadcast(out, head2_b);

    let loss = target.map(|t| tape.mse_loss(prediction, &[t]));
    (prediction, loss, param_vars)
}

/// Legacy inference over a borrowed graph (fresh tape per call).
pub fn predict_graph(model: &ParaGraphModel, graph: &RelationalGraph, side: [f32; 2]) -> f32 {
    let mut tape = Tape::new();
    let (prediction, _, _) = forward_parts(model, &mut tape, graph, side, None);
    tape.value(prediction).get(0, 0)
}

/// Legacy loss and parameter gradients for one sample (fresh tape, cloned
/// gradient readout).
pub fn loss_and_gradients(model: &ParaGraphModel, sample: &GraphSample) -> (f32, Vec<Matrix>) {
    let mut tape = Tape::new();
    let (_, loss, param_vars) = forward_parts(
        model,
        &mut tape,
        &sample.graph,
        sample.side,
        Some(sample.target),
    );
    let loss = loss.expect("loss requested");
    tape.backward(loss);
    let grads = param_vars.iter().map(|&v| tape.grad(v)).collect();
    (tape.value(loss).get(0, 0), grads)
}

/// Legacy evaluation: one tape per sample, rayon fan-out.
pub fn evaluate(
    model: &ParaGraphModel,
    prepared: &PreparedDataset,
    indices: &[usize],
) -> Vec<PredictionRecord> {
    indices
        .par_iter()
        .map(|&i| {
            let sample = &prepared.samples[i];
            let encoded = predict_graph(model, &sample.graph, sample.side);
            let predicted_ms = prepared.target_transform.decode(encoded).max(0.0);
            let meta = &prepared.meta[i];
            PredictionRecord {
                id: meta.id,
                application: meta.application.clone(),
                variant: meta.variant.clone(),
                actual_ms: meta.runtime_ms,
                predicted_ms,
            }
        })
        .collect()
}

/// The legacy training loop: rayon-parallel per-sample gradients,
/// hand-averaged, one fresh tape per sample per step.
pub fn train_prepared(
    prepared: &PreparedDataset,
    config: &TrainConfig,
) -> Result<TrainedOutcome, TrainError> {
    if config.epochs == 0 {
        return Err(TrainError::ZeroEpochs);
    }
    if prepared.train_idx.is_empty() {
        return Err(TrainError::EmptyTrainingSplit);
    }
    let mut model = ParaGraphModel::new(config.model, config.seed);
    let mut adam = Adam::new(AdamConfig {
        learning_rate: config.learning_rate,
        ..AdamConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7261_696e);
    let mut history = TrainingHistory::default();

    let mut train_order = prepared.train_idx.clone();
    for epoch in 1..=config.epochs {
        train_order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;

        for batch in train_order.chunks(config.batch_size.max(1)) {
            let results: Vec<(f32, Vec<Matrix>)> = batch
                .par_iter()
                .map(|&i| loss_and_gradients(&model, &prepared.samples[i]))
                .collect();

            let batch_len = results.len().max(1) as f32;
            let mut mean_grads: Vec<Matrix> = results[0].1.clone();
            let mut batch_loss = results[0].0;
            for (loss, grads) in results.iter().skip(1) {
                batch_loss += *loss;
                for (acc, g) in mean_grads.iter_mut().zip(grads.iter()) {
                    acc.add_assign(g);
                }
            }
            for g in &mut mean_grads {
                *g = g.scale(1.0 / batch_len);
            }
            epoch_loss += (batch_loss / batch_len) as f64;
            batches += 1;

            adam.begin_step();
            for (key, (param, grad)) in model
                .parameters_mut()
                .into_iter()
                .zip(mean_grads.iter())
                .enumerate()
            {
                adam.step(key, param, grad);
            }
        }

        let val_records = evaluate(&model, prepared, &prepared.val_idx);
        let (rmse_ms, norm_rmse, _) = summarize(&val_records);
        history.epochs.push(EpochStats {
            epoch,
            train_loss: (epoch_loss / batches.max(1) as f64) as f32,
            val_rmse_ms: rmse_ms,
            val_norm_rmse: norm_rmse,
        });
    }

    let validation = evaluate(&model, prepared, &prepared.val_idx);
    let (rmse_ms, norm_rmse, runtime_range_ms) = summarize(&validation);
    Ok(TrainedOutcome {
        model,
        history,
        validation,
        rmse_ms,
        norm_rmse,
        runtime_range_ms,
    })
}
