//! Training loop for the ParaGraph model: dataset preparation (graph
//! construction, feature/target scaling, one-time tensor conversion),
//! mini-batch Adam training over batched disjoint-union graphs on a single
//! reused tape, and validation-set evaluation after every epoch (the
//! training curves of Figures 5 and 7).
//!
//! One tape forward/backward serves a whole mini-batch: the batch-mean MSE
//! loss makes the batched gradients equal (to float precision) to the mean
//! of per-sample gradients, which is exactly what the previous per-sample
//! path averaged by hand. [`crate::reference`] keeps that path alive as the
//! baseline for the golden-equivalence tests and the `gnn_training`
//! benchmark.

use crate::batch::{BatchedGraph, PreparedGraph};
use crate::model::{GraphSample, ModelConfig, ParaGraphModel};
use paragraph_core::Representation;
use pg_dataset::PlatformDataset;
use pg_tensor::{metrics, Adam, AdamConfig, Matrix, MinMaxScaler, Tape, TargetTransform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for parameter initialisation, shuffling and the train/val split.
    pub seed: u64,
    /// Which graph representation to train on (ablation study).
    pub representation: Representation,
    /// Model hyper-parameters.
    pub model: ModelConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            learning_rate: 2e-3,
            seed: 42,
            representation: Representation::ParaGraph,
            model: ModelConfig::default(),
        }
    }
}

impl TrainConfig {
    /// A reduced configuration for unit tests / CI.
    pub fn fast() -> Self {
        Self {
            epochs: 6,
            batch_size: 8,
            model: ModelConfig::tiny(),
            ..Self::default()
        }
    }
}

/// Typed failure of the training entry points.
///
/// Training used to clamp a zero epoch count to one pass silently
/// (`epochs.max(1)`), and downstream consumers of
/// [`TrainingHistory::epochs`] (`first()`/`last()` on the curve) would
/// panic if the clamp were removed without validation. A zero epoch count
/// is a real misconfiguration — e.g. a `PARAGRAPH_FAST` harness computing
/// `epochs` by integer division — so it is now rejected up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// `TrainConfig::epochs` was zero; the training loop would produce an
    /// untrained model and an empty history.
    ZeroEpochs,
    /// The training split contains no samples, so there is nothing to fit
    /// scalers or gradients on.
    EmptyTrainingSplit,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::ZeroEpochs => {
                write!(f, "training requires at least one epoch (epochs was 0)")
            }
            TrainError::EmptyTrainingSplit => {
                write!(f, "training split is empty; nothing to fit")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Metadata of one sample kept alongside the tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Data-point id within the platform dataset.
    pub id: usize,
    /// Application name.
    pub application: String,
    /// Variant name.
    pub variant: String,
    /// Ground-truth runtime in milliseconds.
    pub runtime_ms: f32,
}

/// The dataset converted to model inputs.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Model-ready samples, aligned with `meta`.
    pub samples: Vec<GraphSample>,
    /// Tensor-ready form of each sample's graph (flattened features,
    /// interned edge lists, materialised attention priors), aligned with
    /// `samples`. Converted once here so neither training epochs nor
    /// evaluation passes re-clone edge lists or re-flatten features.
    pub prepared: Vec<PreparedGraph>,
    /// Per-sample metadata.
    pub meta: Vec<SampleMeta>,
    /// Target transform fitted on the training split.
    pub target_transform: TargetTransform,
    /// Side-feature scaler fitted on the training split.
    pub side_scaler: MinMaxScaler,
    /// Indices of the training split.
    pub train_idx: Vec<usize>,
    /// Indices of the validation split.
    pub val_idx: Vec<usize>,
}

/// Validation metrics of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// Mean training MSE (in target/encoded space).
    pub train_loss: f32,
    /// Validation RMSE in milliseconds.
    pub val_rmse_ms: f32,
    /// Validation RMSE normalised by the runtime range.
    pub val_norm_rmse: f32,
}

/// Training history across epochs (Figures 5 and 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainingHistory {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
}

/// One validation-set prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRecord {
    /// Data-point id.
    pub id: usize,
    /// Application name.
    pub application: String,
    /// Variant name.
    pub variant: String,
    /// Ground-truth runtime (ms).
    pub actual_ms: f32,
    /// Predicted runtime (ms).
    pub predicted_ms: f32,
}

/// Result of training one model on one platform dataset.
#[derive(Debug, Clone)]
pub struct TrainedOutcome {
    /// The trained model.
    pub model: ParaGraphModel,
    /// Per-epoch validation metrics.
    pub history: TrainingHistory,
    /// Final validation-set predictions.
    pub validation: Vec<PredictionRecord>,
    /// Final validation RMSE in milliseconds (Table III).
    pub rmse_ms: f32,
    /// Final normalised RMSE (Table III).
    pub norm_rmse: f32,
    /// Runtime range (max - min) of the validation labels in milliseconds.
    pub runtime_range_ms: f32,
}

/// Convert a platform dataset into model-ready samples.
pub fn prepare(
    dataset: &PlatformDataset,
    representation: Representation,
    seed: u64,
) -> PreparedDataset {
    let (train_idx, val_idx) = dataset.split(seed);

    // Fit scalers on the *training* split only.
    let train_runtimes: Vec<f32> = train_idx
        .iter()
        .map(|&i| dataset.points[i].runtime_ms as f32)
        .collect();
    let target_transform = TargetTransform::fit_log1p(&train_runtimes);
    let train_side: Vec<Vec<f32>> = train_idx
        .iter()
        .map(|&i| {
            vec![
                dataset.points[i].teams as f32,
                dataset.points[i].threads as f32,
            ]
        })
        .collect();
    let side_scaler = if train_side.is_empty() {
        MinMaxScaler::fit(&[vec![0.0, 0.0], vec![1.0, 1.0]])
    } else {
        MinMaxScaler::fit(&train_side)
    };

    // Build all graphs in parallel.
    let samples: Vec<GraphSample> = dataset
        .points
        .par_iter()
        .map(|point| {
            let graph = point.build_relational(representation);
            let side = side_scaler.transform(&[point.teams as f32, point.threads as f32]);
            GraphSample {
                graph,
                side: [side[0], side[1]],
                target: target_transform.encode(point.runtime_ms as f32),
            }
        })
        .collect();

    // One-time tensor conversion (flatten features, intern edge lists).
    let prepared: Vec<PreparedGraph> = samples
        .par_iter()
        .map(|s| PreparedGraph::from_relational(&s.graph))
        .collect();

    let meta: Vec<SampleMeta> = dataset
        .points
        .iter()
        .map(|p| SampleMeta {
            id: p.id,
            application: p.application.clone(),
            variant: p.variant.name().to_string(),
            runtime_ms: p.runtime_ms as f32,
        })
        .collect();

    PreparedDataset {
        samples,
        prepared,
        meta,
        target_transform,
        side_scaler,
        train_idx,
        val_idx,
    }
}

/// Assemble the disjoint-union batch of a set of sample indices.
fn batch_of(prepared: &PreparedDataset, indices: &[usize]) -> BatchedGraph {
    let items: Vec<(&PreparedGraph, [f32; 2])> = indices
        .iter()
        .map(|&i| (&prepared.prepared[i], prepared.samples[i].side))
        .collect();
    BatchedGraph::build(&items)
}

/// Number of graphs evaluated per batched forward pass outside training.
/// Bounds peak memory of the disjoint union while keeping the matrices
/// large enough for the parallel matmul kernels.
const EVAL_BATCH: usize = 64;

/// Evaluate a model on a set of samples, returning per-sample predictions in
/// milliseconds. Batched: chunks of [`EVAL_BATCH`] graphs go through one
/// forward pass each on a single reused tape.
pub fn evaluate(
    model: &ParaGraphModel,
    prepared: &PreparedDataset,
    indices: &[usize],
) -> Vec<PredictionRecord> {
    let mut tape = Tape::new();
    let mut records = Vec::with_capacity(indices.len());
    for chunk in indices.chunks(EVAL_BATCH) {
        let batch = batch_of(prepared, chunk);
        let encoded = model.predict_batched(&mut tape, &batch);
        for (&i, encoded) in chunk.iter().zip(encoded) {
            let predicted_ms = prepared.target_transform.decode(encoded).max(0.0);
            let meta = &prepared.meta[i];
            records.push(PredictionRecord {
                id: meta.id,
                application: meta.application.clone(),
                variant: meta.variant.clone(),
                actual_ms: meta.runtime_ms,
                predicted_ms,
            });
        }
    }
    records
}

/// RMSE (ms) and normalised RMSE of a set of prediction records.
pub fn summarize(records: &[PredictionRecord]) -> (f32, f32, f32) {
    let predicted: Vec<f32> = records.iter().map(|r| r.predicted_ms).collect();
    let actual: Vec<f32> = records.iter().map(|r| r.actual_ms).collect();
    let rmse = metrics::rmse(&predicted, &actual);
    let range = metrics::value_range(&actual);
    let norm = if range > 0.0 { rmse / range } else { 0.0 };
    (rmse, norm, range)
}

/// Train the ParaGraph model on one platform dataset.
pub fn train(
    dataset: &PlatformDataset,
    config: &TrainConfig,
) -> Result<TrainedOutcome, TrainError> {
    let prepared = prepare(dataset, config.representation, config.seed);
    train_prepared(&prepared, config)
}

/// Train on an already-prepared dataset (lets the ablation study reuse the
/// expensive graph construction across representations when they share it).
///
/// Each mini-batch is a disjoint-union [`BatchedGraph`] driven through one
/// forward/backward on a single tape that is `reset()` (not rebuilt)
/// between steps, and the optimiser reads gradients by reference
/// ([`pg_tensor::Tape::grad_ref`]) instead of cloning them.
pub fn train_prepared(
    prepared: &PreparedDataset,
    config: &TrainConfig,
) -> Result<TrainedOutcome, TrainError> {
    if config.epochs == 0 {
        return Err(TrainError::ZeroEpochs);
    }
    if prepared.train_idx.is_empty() {
        return Err(TrainError::EmptyTrainingSplit);
    }
    let mut model = ParaGraphModel::new(config.model, config.seed);
    let mut adam = Adam::new(AdamConfig {
        learning_rate: config.learning_rate,
        ..AdamConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7261_696e);
    let mut history = TrainingHistory::default();
    let mut tape = Tape::new();
    let mut last_validation: Option<Vec<PredictionRecord>> = None;
    // Parameters that receive no gradient (e.g. the attention vector of a
    // relation absent from a batch) still take an Adam step with a zero
    // gradient, exactly as the per-sample path always did (its `Tape::grad`
    // materialised zeros). Cache the zero matrices per parameter key.
    let mut zeros: Vec<Matrix> = Vec::new();

    let mut train_order = prepared.train_idx.clone();
    for epoch in 1..=config.epochs {
        train_order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;

        for batch_indices in train_order.chunks(config.batch_size.max(1)) {
            tape.reset();
            let batch = batch_of(prepared, batch_indices);
            let targets: Vec<f32> = batch_indices
                .iter()
                .map(|&i| prepared.samples[i].target)
                .collect();
            let (_, loss, param_vars) = model.forward_batched(&mut tape, &batch, Some(&targets));
            let loss = loss.expect("targets were supplied");
            let backward_timer = pg_obs::obs().timer(pg_obs::Stage::GnnBackward);
            tape.backward(loss);
            backward_timer.finish();
            // The batch-mean MSE equals the mean of per-sample losses.
            epoch_loss += f64::from(tape.value(loss).get(0, 0));
            batches += 1;

            adam.begin_step();
            for (key, (param, var)) in model
                .parameters_mut()
                .into_iter()
                .zip(param_vars.iter())
                .enumerate()
            {
                if let Some(grad) = tape.grad_ref(*var) {
                    adam.step(key, param, grad);
                } else {
                    if zeros.len() <= key {
                        zeros.resize_with(key + 1, || Matrix::zeros(0, 0));
                    }
                    if zeros[key].shape() != param.shape() {
                        zeros[key].reset_to_zeros(param.rows(), param.cols());
                    }
                    adam.step(key, param, &zeros[key]);
                }
            }
        }

        // Validation after every epoch (Figures 5 and 7 plot this curve).
        let val_records = evaluate(&model, prepared, &prepared.val_idx);
        let (rmse_ms, norm_rmse, _) = summarize(&val_records);
        history.epochs.push(EpochStats {
            epoch,
            train_loss: (epoch_loss / batches.max(1) as f64) as f32,
            val_rmse_ms: rmse_ms,
            val_norm_rmse: norm_rmse,
        });
        last_validation = Some(val_records);
    }

    // The final validation pass is exactly the last epoch's (same model,
    // same split, deterministic forward), so reuse it instead of paying a
    // second evaluation sweep per training run.
    let validation =
        last_validation.unwrap_or_else(|| evaluate(&model, prepared, &prepared.val_idx));
    let (rmse_ms, norm_rmse, runtime_range_ms) = summarize(&validation);
    Ok(TrainedOutcome {
        model,
        history,
        validation,
        rmse_ms,
        norm_rmse,
        runtime_range_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};
    use pg_perfsim::Platform;

    fn tiny_dataset() -> PlatformDataset {
        collect_platform(
            Platform::SummitV100,
            &PipelineConfig {
                scale: DatasetScale::Fast,
                seed: 3,
                noise_sigma: 0.02,
            },
        )
    }

    #[test]
    fn prepare_builds_one_sample_per_point() {
        let ds = tiny_dataset();
        let prepared = prepare(&ds, Representation::ParaGraph, 1);
        assert_eq!(prepared.samples.len(), ds.len());
        assert_eq!(prepared.meta.len(), ds.len());
        assert_eq!(prepared.train_idx.len() + prepared.val_idx.len(), ds.len());
        // Encoded targets are within [0, 1] (training split) or close to it.
        assert!(prepared
            .samples
            .iter()
            .all(|s| s.target >= -0.2 && s.target <= 1.2));
        // Side features are scaled.
        assert!(prepared
            .samples
            .iter()
            .all(|s| s.side[0] >= 0.0 && s.side[0] <= 1.0));
    }

    #[test]
    fn training_reduces_validation_error() {
        let ds = tiny_dataset();
        let config = TrainConfig {
            epochs: 8,
            ..TrainConfig::fast()
        };
        let outcome = train(&ds, &config).unwrap();
        assert_eq!(outcome.history.epochs.len(), 8);
        let first = outcome.history.epochs.first().unwrap().val_norm_rmse;
        let last = outcome.history.epochs.last().unwrap().val_norm_rmse;
        assert!(
            last < first,
            "validation error must improve during training: {first} -> {last}"
        );
        assert!(
            outcome.norm_rmse < 0.5,
            "normalised RMSE {} is unreasonably high",
            outcome.norm_rmse
        );
        assert_eq!(outcome.validation.len(), ds.split(config.seed).1.len());
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let ds = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            ..TrainConfig::fast()
        };
        let a = train(&ds, &config).unwrap();
        let b = train(&ds, &config).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.rmse_ms, b.rmse_ms);
    }

    #[test]
    fn zero_epochs_is_a_typed_error_not_a_panic() {
        let ds = tiny_dataset();
        let config = TrainConfig {
            epochs: 0,
            ..TrainConfig::fast()
        };
        assert_eq!(train(&ds, &config).unwrap_err(), TrainError::ZeroEpochs);
        // The prepared-dataset entry point rejects it the same way.
        let prepared = prepare(&ds, config.representation, config.seed);
        assert_eq!(
            train_prepared(&prepared, &config).unwrap_err(),
            TrainError::ZeroEpochs
        );
    }

    #[test]
    fn empty_training_split_is_a_typed_error() {
        let ds = tiny_dataset();
        let mut prepared = prepare(&ds, Representation::ParaGraph, 1);
        prepared.train_idx.clear();
        assert_eq!(
            train_prepared(&prepared, &TrainConfig::fast()).unwrap_err(),
            TrainError::EmptyTrainingSplit
        );
    }

    #[test]
    fn summarize_matches_metrics() {
        let records = vec![
            PredictionRecord {
                id: 0,
                application: "MM".into(),
                variant: "gpu".into(),
                actual_ms: 10.0,
                predicted_ms: 12.0,
            },
            PredictionRecord {
                id: 1,
                application: "MM".into(),
                variant: "gpu".into(),
                actual_ms: 110.0,
                predicted_ms: 100.0,
            },
        ];
        let (rmse, norm, range) = summarize(&records);
        assert!((range - 100.0).abs() < 1e-6);
        let expected_rmse = ((4.0 + 100.0) / 2.0f32).sqrt();
        assert!((rmse - expected_rmse).abs() < 1e-4);
        assert!((norm - expected_rmse / 100.0).abs() < 1e-6);
    }
}
