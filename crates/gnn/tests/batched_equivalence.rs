//! Golden-equivalence tests for the batched execution path: the disjoint
//! union encoding, the reused tape and the blocked matmul kernel are only
//! admissible if the numbers they produce match the per-sample path. Every
//! comparison here runs on a fixed seed; 1e-5 is the pinned tolerance from
//! the execution-path contract (rows of batched matrices are computed by
//! the same kernels as per-sample rows, so the only drift is float
//! re-association across samples in the loss and gradient reductions).

use pg_dataset::{collect_platform, DatasetScale, PipelineConfig, PlatformDataset};
use pg_gnn::{
    evaluate, prepare, reference, train_prepared, BatchedGraph, GnnBackend, ModelConfig,
    ParaGraphModel, PreparedGraph, SparseDispatch, TrainConfig, TrainedModel,
};
use pg_perfsim::Platform;
use pg_tensor::{Matrix, Tape};

const TOLERANCE: f32 = 1e-5;

fn tiny_dataset() -> PlatformDataset {
    collect_platform(
        Platform::SummitV100,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 3,
            noise_sigma: 0.02,
        },
    )
}

#[test]
fn batched_predictions_match_per_sample_within_tolerance() {
    let ds = tiny_dataset();
    let prepared = prepare(&ds, paragraph_core::Representation::ParaGraph, 7);
    let model = ParaGraphModel::new(ModelConfig::tiny(), 7);

    // Per-sample legacy reference: one fresh tape per sample, concat-based
    // attention — the pre-batching execution path.
    let reference: Vec<f32> = prepared
        .samples
        .iter()
        .map(|s| reference::predict_graph(&model, &s.graph, s.side))
        .collect();

    // Batched: every sample in chunked disjoint unions on one reused tape.
    let mut tape = Tape::new();
    let mut batched = Vec::with_capacity(prepared.samples.len());
    for chunk in prepared.prepared.chunks(17) {
        let offset = batched.len();
        let items: Vec<(&PreparedGraph, [f32; 2])> = chunk
            .iter()
            .enumerate()
            .map(|(i, graph)| (graph, prepared.samples[offset + i].side))
            .collect();
        let batch = BatchedGraph::build(&items);
        batched.extend(model.predict_batched(&mut tape, &batch));
    }

    assert_eq!(reference.len(), batched.len());
    for (i, (r, b)) in reference.iter().zip(batched.iter()).enumerate() {
        assert!(
            (r - b).abs() <= TOLERANCE,
            "sample {i}: per-sample {r} vs batched {b}"
        );
    }
}

#[test]
fn batched_gradients_match_mean_of_per_sample_gradients() {
    let ds = tiny_dataset();
    let prepared = prepare(&ds, paragraph_core::Representation::ParaGraph, 11);
    let model = ParaGraphModel::new(ModelConfig::tiny(), 11);
    let batch_indices: Vec<usize> = prepared.train_idx.iter().copied().take(12).collect();
    assert!(batch_indices.len() >= 4, "need a real batch to compare");

    // Per-sample reference: average the per-sample gradients by hand, the
    // way the pre-batching training loop did.
    let mut mean_loss = 0.0f32;
    let mut mean_grads: Vec<Matrix> = model
        .parameters()
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();
    for &i in &batch_indices {
        let (loss, grads) = reference::loss_and_gradients(&model, &prepared.samples[i]);
        mean_loss += loss;
        for (acc, g) in mean_grads.iter_mut().zip(grads.iter()) {
            acc.add_assign(g);
        }
    }
    let scale = 1.0 / batch_indices.len() as f32;
    mean_loss *= scale;
    for g in &mut mean_grads {
        *g = g.scale(scale);
    }

    // Batched: one forward/backward over the disjoint union.
    let items: Vec<(&PreparedGraph, [f32; 2])> = batch_indices
        .iter()
        .map(|&i| (&prepared.prepared[i], prepared.samples[i].side))
        .collect();
    let targets: Vec<f32> = batch_indices
        .iter()
        .map(|&i| prepared.samples[i].target)
        .collect();
    let batch = BatchedGraph::build(&items);
    let mut tape = Tape::new();
    let (_, loss, param_vars) = model.forward_batched(&mut tape, &batch, Some(&targets));
    let loss = loss.unwrap();
    tape.backward(loss);

    assert!(
        (tape.value(loss).get(0, 0) - mean_loss).abs() <= TOLERANCE,
        "batch-mean loss {} vs mean of per-sample losses {mean_loss}",
        tape.value(loss).get(0, 0)
    );
    for (key, (reference, var)) in mean_grads.iter().zip(param_vars.iter()).enumerate() {
        let batched = tape.grad(*var);
        let diff = reference.max_abs_diff(&batched);
        assert!(
            diff <= TOLERANCE,
            "gradient {key} diverged by {diff} (per-sample mean vs batched)"
        );
    }
}

#[test]
fn sparse_dispatch_predictions_match_per_sample_in_every_mode() {
    // The density heuristic must be a pure performance knob: forcing every
    // relation down the push branch or the pull (CSR SpMM) branch has to
    // reproduce the per-sample reference on the same fixtures as the Auto
    // path. This covers each branch regardless of what densities the
    // dataset happens to produce.
    let ds = tiny_dataset();
    let prepared = prepare(&ds, paragraph_core::Representation::ParaGraph, 7);
    let model = ParaGraphModel::new(ModelConfig::tiny(), 7);

    let reference: Vec<f32> = prepared
        .samples
        .iter()
        .map(|s| reference::predict_graph(&model, &s.graph, s.side))
        .collect();

    for dispatch in [
        SparseDispatch::Auto,
        SparseDispatch::ForcePush,
        SparseDispatch::ForcePull,
    ] {
        let mut tape = Tape::new();
        let mut batched = Vec::with_capacity(prepared.samples.len());
        for chunk in prepared.prepared.chunks(17) {
            let offset = batched.len();
            let items: Vec<(&PreparedGraph, [f32; 2])> = chunk
                .iter()
                .enumerate()
                .map(|(i, graph)| (graph, prepared.samples[offset + i].side))
                .collect();
            let batch = BatchedGraph::build(&items);
            batched.extend(model.predict_batched_with_dispatch(&mut tape, &batch, dispatch));
        }
        assert_eq!(reference.len(), batched.len());
        for (i, (r, b)) in reference.iter().zip(batched.iter()).enumerate() {
            assert!(
                (r - b).abs() <= TOLERANCE,
                "{dispatch:?} sample {i}: per-sample {r} vs batched {b}"
            );
        }
    }
}

#[test]
fn sparse_dispatch_gradients_match_per_sample_in_every_mode() {
    let ds = tiny_dataset();
    let prepared = prepare(&ds, paragraph_core::Representation::ParaGraph, 11);
    let model = ParaGraphModel::new(ModelConfig::tiny(), 11);
    let batch_indices: Vec<usize> = prepared.train_idx.iter().copied().take(12).collect();
    assert!(batch_indices.len() >= 4, "need a real batch to compare");

    let mut mean_loss = 0.0f32;
    let mut mean_grads: Vec<Matrix> = model
        .parameters()
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();
    for &i in &batch_indices {
        let (loss, grads) = reference::loss_and_gradients(&model, &prepared.samples[i]);
        mean_loss += loss;
        for (acc, g) in mean_grads.iter_mut().zip(grads.iter()) {
            acc.add_assign(g);
        }
    }
    let scale = 1.0 / batch_indices.len() as f32;
    mean_loss *= scale;
    for g in &mut mean_grads {
        *g = g.scale(scale);
    }

    let items: Vec<(&PreparedGraph, [f32; 2])> = batch_indices
        .iter()
        .map(|&i| (&prepared.prepared[i], prepared.samples[i].side))
        .collect();
    let targets: Vec<f32> = batch_indices
        .iter()
        .map(|&i| prepared.samples[i].target)
        .collect();
    let batch = BatchedGraph::build(&items);

    for dispatch in [SparseDispatch::ForcePush, SparseDispatch::ForcePull] {
        let mut tape = Tape::new();
        let (_, loss, param_vars) =
            model.forward_batched_with_dispatch(&mut tape, &batch, Some(&targets), dispatch);
        let loss = loss.unwrap();
        tape.backward(loss);
        assert!(
            (tape.value(loss).get(0, 0) - mean_loss).abs() <= TOLERANCE,
            "{dispatch:?}: batch-mean loss {} vs mean of per-sample losses {mean_loss}",
            tape.value(loss).get(0, 0)
        );
        for (key, (reference, var)) in mean_grads.iter().zip(param_vars.iter()).enumerate() {
            let batched = tape.grad(*var);
            let diff = reference.max_abs_diff(&batched);
            assert!(
                diff <= TOLERANCE,
                "{dispatch:?}: gradient {key} diverged by {diff}"
            );
        }
    }
}

#[test]
fn batched_and_per_sample_evaluation_agree() {
    let ds = tiny_dataset();
    let prepared = prepare(&ds, paragraph_core::Representation::ParaGraph, 5);
    let model = ParaGraphModel::new(ModelConfig::tiny(), 5);
    let batched = evaluate(&model, &prepared, &prepared.val_idx);
    let reference = reference::evaluate(&model, &prepared, &prepared.val_idx);
    assert_eq!(batched.len(), reference.len());
    for (b, r) in batched.iter().zip(reference.iter()) {
        assert_eq!(b.id, r.id);
        let scale = r.predicted_ms.abs().max(1.0);
        assert!(
            (b.predicted_ms - r.predicted_ms).abs() <= TOLERANCE * scale,
            "id {}: batched {} vs per-sample {}",
            b.id,
            b.predicted_ms,
            r.predicted_ms
        );
    }
}

#[test]
fn trained_bundles_score_identically_on_the_validation_split() {
    // Training through the batched path must produce a model that scores the
    // validation split like one trained through the per-sample path. Both
    // run the same seed, shuffle order and update rule; only float
    // re-association in the gradient reductions differs, so the tolerance is
    // wider than the single-step pin but still tight in relative terms.
    let ds = tiny_dataset();
    let config = TrainConfig {
        epochs: 4,
        ..TrainConfig::fast()
    };
    let prepared = prepare(&ds, config.representation, config.seed);
    let batched = train_prepared(&prepared, &config).unwrap();
    let reference = reference::train_prepared(&prepared, &config).unwrap();

    assert_eq!(batched.validation.len(), reference.validation.len());
    for (b, r) in batched.validation.iter().zip(reference.validation.iter()) {
        assert_eq!(b.id, r.id);
        let scale = r.predicted_ms.abs().max(1.0);
        assert!(
            (b.predicted_ms - r.predicted_ms).abs() <= 1e-2 * scale,
            "id {}: batched-trained {} vs per-sample-trained {}",
            b.id,
            b.predicted_ms,
            r.predicted_ms
        );
    }
    let rel = (batched.rmse_ms - reference.rmse_ms).abs() / reference.rmse_ms.max(1e-6);
    assert!(
        rel <= 1e-2,
        "validation RMSE diverged: batched {} vs per-sample {}",
        batched.rmse_ms,
        reference.rmse_ms
    );
}

#[test]
fn engine_gnn_backend_batch_matches_per_instance_predictions() {
    use pg_engine::{AdviseRequest, Engine};

    let ds = tiny_dataset();
    let config = TrainConfig::fast();
    let (bundle, _) = TrainedModel::fit(&ds, &config).unwrap();

    let source = "void saxpy(float *x, float *y) {\n\
                  #pragma omp target teams distribute parallel for\n\
                  for (int i = 0; i < 65536; i++) { y[i] = y[i] + 2.0 * x[i]; }\n}";

    // Batched: the engine's advise path goes through predict_batch.
    let engine = Engine::builder()
        .platform(Platform::SummitV100)
        .backend(GnnBackend::new(bundle.clone(), Platform::SummitV100))
        .build();
    let report = engine
        .advise(&AdviseRequest::source("mine/saxpy", source))
        .unwrap();
    assert!(report.failures.is_empty());
    assert!(report.rankings.len() > 1, "sweep should produce candidates");

    // Per-instance reference: the bundle's single-graph path per candidate.
    for ranked in &report.rankings {
        let graph = paragraph_core::to_relational(&paragraph_core::build(
            &pg_frontend::parse(source).unwrap(),
            &bundle.builder_config(ranked.launch.teams, ranked.launch.threads),
        ));
        let reference =
            bundle.predict_relational(&graph, ranked.launch.teams, ranked.launch.threads);
        let scale = reference.abs().max(1.0);
        assert!(
            (ranked.predicted_ms as f32 - reference).abs() <= TOLERANCE * scale,
            "launch {:?}: batched {} vs per-instance {}",
            ranked.launch,
            ranked.predicted_ms,
            reference
        );
    }
}

#[test]
fn batch_with_failing_candidate_reports_in_place() {
    use pg_advisor::{KernelInstance, LaunchConfig, Variant};
    use pg_engine::Engine;

    let ds = tiny_dataset();
    let (bundle, _) = TrainedModel::fit(&ds, &TrainConfig::fast()).unwrap();
    let engine = Engine::builder()
        .platform(Platform::SummitV100)
        .backend(GnnBackend::new(bundle, Platform::SummitV100))
        .build();

    let instance = |source: &str| KernelInstance {
        application: "T".into(),
        kernel: "t".into(),
        variant: Variant::Gpu,
        sizes: Default::default(),
        launch: LaunchConfig {
            teams: 80,
            threads: 128,
        },
        source: source.to_string(),
        bytes_to_device: 0,
        bytes_from_device: 0,
    };
    let good = "void f(float *a) { for (int i = 0; i < 64; i++) { a[i] = 2.0 * a[i]; } }";
    let results =
        engine.predict_instances(&[instance(good), instance("not C at all"), instance(good)]);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_ok());
    // The two identical good candidates must agree exactly.
    assert_eq!(results[0].as_ref().unwrap(), results[2].as_ref().unwrap());
}
