//! Persistence guarantees of the model registry: a saved bundle loads back
//! to the identical model, corruption is a typed error (never a panic, never
//! a silently different model), and batched prediction is invariant to batch
//! composition — the property the serving tier's micro-batcher relies on
//! when it coalesces unrelated requests into one forward pass.

use pg_dataset::{collect_platform, DatasetScale, PipelineConfig, PlatformDataset};
use pg_gnn::registry::{load_bundle, BundleError};
use pg_gnn::{evaluate, prepare, TrainConfig, TrainedModel};
use pg_perfsim::Platform;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const PLATFORM: Platform = Platform::SummitV100;

fn tiny_dataset() -> &'static PlatformDataset {
    static DS: OnceLock<PlatformDataset> = OnceLock::new();
    DS.get_or_init(|| {
        collect_platform(
            PLATFORM,
            &PipelineConfig {
                scale: DatasetScale::Fast,
                seed: 3,
                noise_sigma: 0.02,
            },
        )
    })
}

fn trained() -> &'static TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        TrainedModel::fit(tiny_dataset(), &TrainConfig::fast())
            .unwrap()
            .0
    })
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pg-bundle-roundtrip-{tag}-{}.bundle.json",
        std::process::id()
    ))
}

#[test]
fn round_trip_preserves_validation_predictions_exactly() {
    let ds = tiny_dataset();
    let config = TrainConfig::fast();
    let bundle = trained();
    let path = temp_path("roundtrip");
    let fingerprint = bundle.save(&path, PLATFORM).unwrap();
    let loaded = TrainedModel::load(&path).unwrap();
    assert_eq!(loaded.trained_on, PLATFORM);
    assert_eq!(loaded.fingerprint, fingerprint);
    // The weights survive the JSON round trip bit-exactly (f32 -> f64 JSON
    // -> f32 is lossless), so the models compare equal...
    assert_eq!(loaded.model, *bundle);
    // ...and every validation-split prediction is bit-identical, through
    // the same source-level entry point a serving process uses.
    let prepared = prepare(ds, config.representation, config.seed);
    let records = evaluate(&bundle.model, &prepared, &prepared.val_idx);
    assert!(!records.is_empty());
    for (record, &idx) in records.iter().zip(prepared.val_idx.iter()) {
        let point = &ds.points[idx];
        let original = bundle
            .predict_source(&point.source, point.teams, point.threads)
            .unwrap();
        let reloaded = loaded
            .model
            .predict_source(&point.source, point.teams, point.threads)
            .unwrap();
        assert_eq!(
            original.to_bits(),
            reloaded.to_bits(),
            "prediction diverged after reload (original {original}, reloaded {reloaded}, \
             training-path {})",
            record.predicted_ms
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn format_version_and_fingerprint_mismatches_are_typed() {
    let bundle = trained();
    let path = temp_path("typed-errors");
    bundle.save(&path, PLATFORM).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();

    // Unsupported format version.
    let bumped = text.replacen("\"format_version\":1", "\"format_version\":999", 1);
    assert_ne!(bumped, text);
    std::fs::write(&path, bumped).unwrap();
    assert!(matches!(
        load_bundle(&path),
        Err(BundleError::FormatVersion {
            found: 999,
            expected: 1
        })
    ));

    // Tampered payload: the stored fingerprint no longer matches the
    // recomputed one.
    let tampered = text.replacen(
        "\"platform\":\"SummitV100\"",
        "\"platform\":\"CoronaMi50\"",
        1,
    );
    assert_ne!(tampered, text);
    std::fs::write(&path, tampered).unwrap();
    assert!(matches!(
        load_bundle(&path),
        Err(BundleError::FingerprintMismatch { .. })
    ));

    // Not JSON at all.
    std::fs::write(&path, "definitely not a bundle").unwrap();
    assert!(matches!(
        load_bundle(&path),
        Err(BundleError::Malformed { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: flipping any single byte of a bundle artifact never panics
    /// and never yields a *different* model. Either the load fails with a
    /// typed error (structural bytes break the JSON parser; payload and
    /// platform bytes are covered by the fingerprint; version and
    /// fingerprint bytes by their own checks), or — when the flip lands on
    /// a float digit below f64 precision, so the value parses back
    /// identically — the loaded model is bit-for-bit the original (the
    /// fingerprint covers the canonical re-serialization, which such a flip
    /// does not change).
    #[test]
    fn any_single_byte_corruption_errors_or_loads_the_identical_model(
        position_seed in 0u64..1_000_000,
        replacement in 0u8..=255,
    ) {
        let bundle = trained();
        let path = temp_path(&format!("corrupt-{position_seed}-{replacement}"));
        let fingerprint = bundle.save(&path, PLATFORM).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let position = (position_seed as usize) % bytes.len();
        prop_assume!(bytes[position] != replacement);
        bytes[position] = replacement;
        std::fs::write(&path, &bytes).unwrap();
        let result = load_bundle(&path);
        let _ = std::fs::remove_file(&path);
        if let Ok(loaded) = result {
            prop_assert_eq!(
                &loaded.model,
                bundle,
                "corrupting byte {} to 0x{:02x} loaded a different model",
                position,
                replacement
            );
            prop_assert_eq!(loaded.fingerprint, fingerprint);
        }
    }
}

#[test]
fn batched_prediction_is_invariant_to_batch_composition() {
    use paragraph_core::{build, to_relational};

    let ds = tiny_dataset();
    let bundle = trained();
    let items: Vec<_> = ds
        .points
        .iter()
        .take(12)
        .map(|p| {
            let ast = pg_frontend::parse(&p.source).unwrap();
            let graph = to_relational(&build(&ast, &bundle.builder_config(p.teams, p.threads)));
            (graph, p.teams, p.threads)
        })
        .collect();
    let refs: Vec<(&paragraph_core::RelationalGraph, u64, u64)> =
        items.iter().map(|(g, t, th)| (g, *t, *th)).collect();

    let full = bundle.predict_relational_batch(&refs);
    // Any prefix batched alone must predict bit-identically to the same
    // graphs inside the larger disjoint union: predictions depend only on
    // the candidate itself, not on what it was coalesced with.
    for split in [1, 3, refs.len() / 2, refs.len() - 1] {
        let prefix = bundle.predict_relational_batch(&refs[..split]);
        for (i, (alone, joined)) in prefix.iter().zip(&full).enumerate() {
            assert_eq!(
                alone.to_bits(),
                joined.to_bits(),
                "candidate {i} predicted {alone} alone but {joined} in a batch of {}",
                refs.len()
            );
        }
    }
    // And the single-graph path agrees with the batched path to float
    // precision (the two are different kernels, equivalent math — the
    // contract pinned since the batched path landed).
    for (i, &(graph, teams, threads)) in refs.iter().enumerate() {
        let single = bundle.predict_relational(graph, teams, threads);
        assert!(
            (single - full[i]).abs() <= 1e-5 * single.abs().max(1.0),
            "candidate {i}: single-graph path {single} vs batched {}",
            full[i]
        );
    }
}
