//! pg-analyze as a consumer of hostile input: the legality gate must be
//! panic-free on anything the parser can emit, and its verdicts must not
//! depend on formatting.

use pg_analyze::{analyze_source, LegalityVerdict};
use pg_frontend::testing::{generate_program, mutate, reformat, Rng};

fn fuzz_iters() -> u64 {
    std::env::var("PARAGRAPH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Formatting-independent fingerprint of a report: the verdict shape (with
/// clause sets, which name variables, not positions) plus the sorted rule
/// ids. Messages and spans legitimately change when line numbers move.
fn fingerprint(report: &pg_analyze::AnalysisReport) -> (String, Vec<String>) {
    let verdict = match &report.verdict {
        LegalityVerdict::Safe => "safe".to_string(),
        LegalityVerdict::SafeWithClauses(clauses) => {
            let mut c = clauses.clone();
            c.sort();
            format!("safe-with-clauses:{}", c.join(","))
        }
        LegalityVerdict::Race(_) => "race".to_string(),
    };
    let mut rules: Vec<String> = report.diagnostics.iter().map(|d| d.rule.clone()).collect();
    rules.sort();
    (verdict, rules)
}

#[test]
fn verdicts_are_formatting_independent() {
    let iters = fuzz_iters();
    for seed in 0..iters {
        let src = generate_program(seed);
        let mut style = Rng::new(seed.rotate_left(17) ^ 0xC0FFEE);
        let twin = reformat(&src, &mut style);
        let a = analyze_source(&src);
        let b = analyze_source(&twin);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed}: analyze verdict changed under whitespace/comment mutation\n--- original\n{src}\n--- twin\n{twin}"
        );
    }
}

#[test]
fn analyze_is_panic_free_on_mutated_inputs() {
    let iters = fuzz_iters();
    for seed in 0..iters {
        let mut rng = Rng::new(seed.wrapping_mul(0x5DEECE66D));
        let mut src = generate_program(seed);
        for round in 0..2 {
            src = mutate(&src, &mut rng);
            let input = src.clone();
            let outcome = std::panic::catch_unwind(move || {
                let _ = analyze_source(&input);
            });
            assert!(
                outcome.is_ok(),
                "seed {seed} round {round}: analyze_source panicked\n---\n{src}"
            );
        }
    }
}

#[test]
fn unparseable_input_yields_race_verdict_with_parse_error_diagnostic() {
    let report = analyze_source("void f() { int x = ((((; }");
    assert!(report.verdict.is_race());
    assert!(report.diagnostics.iter().any(|d| d.rule == "parse-error"));
    // Limit rejections surface the same way: a gated verdict, not a panic.
    let bomb = pg_frontend::testing::nesting_bomb(100_000);
    let report = analyze_source(&bomb);
    assert!(report.verdict.is_race());
    assert!(report.diagnostics.iter().any(|d| d.rule == "parse-error"));
}
