//! Parallel-region discovery and def-use/read-write set collection.
//!
//! A *region* is one OpenMP loop directive (`parallel for`, `target teams
//! distribute parallel for`, `simd`) together with its associated loop nest.
//! Region construction classifies the nest counters (parallel vs sequential,
//! honouring `collapse`), walks the loop body once, and records every array
//! access, scalar access, local declaration and call — the raw material every
//! lint rule works from.

use crate::affine::CounterMeta;
use crate::SourceSpan;
use pg_frontend::analysis::{collect_const_env, loop_nest, ConstEnv, LoopNestLevel};
use pg_frontend::symbols::resolve;
use pg_frontend::{Ast, AstKind, NodeId, OmpClause, OmpDirective, SymbolTable};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One array read or write inside a region.
#[derive(Debug, Clone)]
pub struct ArrayAccess {
    /// Base array name.
    pub array: String,
    /// The `ArraySubscriptExpr` (or operator) node of the access.
    pub node: NodeId,
    /// True for writes (including the write half of `a[i] += x`).
    pub is_write: bool,
    /// Subscript expressions, outermost dimension first.
    pub subscripts: Vec<NodeId>,
}

/// One scalar read or write inside a region.
#[derive(Debug, Clone)]
pub struct ScalarAccess {
    /// Variable name.
    pub name: String,
    /// The node performing the access.
    pub node: NodeId,
    /// True for writes.
    pub is_write: bool,
    /// Pre-order position inside the region, for before/after heuristics.
    pub order: usize,
    /// True when the access sits in the init/increment slot of a `ForStmt`
    /// (ordinary counter bookkeeping, not a body write).
    pub in_for_slot: bool,
    /// Assigned expression for plain/compound assignments.
    pub rhs: Option<NodeId>,
    /// Operator spelling of the writing node (`=`, `+=`, `++`, ...).
    pub opcode: Option<String>,
}

/// A scalar declared inside the region body.
#[derive(Debug, Clone)]
pub struct LocalDecl {
    /// Variable name.
    pub name: String,
    /// The `VarDecl` node.
    pub node: NodeId,
    /// Initialiser expression, when present.
    pub init: Option<NodeId>,
    /// Pre-order position inside the region.
    pub order: usize,
    /// True for array declarations (`float tmp[16]`).
    pub is_array: bool,
}

/// One OpenMP loop directive and everything collected from its nest.
#[derive(Debug, Clone)]
pub struct ParallelRegion {
    /// The directive node.
    pub directive_node: NodeId,
    /// Parsed directive payload.
    pub directive: OmpDirective,
    /// The associated `ForStmt`, when the directive is bound to one.
    pub for_stmt: Option<NodeId>,
    /// Source location of the directive (or its loop).
    pub span: Option<SourceSpan>,
    /// Why the parallel loop (nest) is not analysable, when it is not.
    pub defect: Option<String>,
    /// Canonical counters of the nest keyed by name.
    pub counters: BTreeMap<String, CounterMeta>,
    /// Names of the parallel counters, outermost first.
    pub parallel_counters: Vec<String>,
    /// Every array access in the nest.
    pub array_accesses: Vec<ArrayAccess>,
    /// Every scalar access in the nest.
    pub scalar_accesses: Vec<ScalarAccess>,
    /// Scalars declared inside the nest.
    pub local_decls: Vec<LocalDecl>,
    /// Calls `(callee name, node)`; unnamed callees record an empty name.
    pub calls: Vec<(String, NodeId)>,
    /// Assignment targets that are neither scalars nor array subscripts.
    pub opaque_writes: Vec<NodeId>,
    /// Variables privatised by `private`/`firstprivate` clauses.
    pub clause_private: HashSet<String>,
    /// `(operator, variable)` pairs from `reduction` clauses.
    pub clause_reductions: Vec<(String, String)>,
}

impl ParallelRegion {
    /// Names of region-local scalars written exactly once, by their
    /// declaration initialiser — safe to inline into subscripts.
    pub fn substitutable(&self) -> HashMap<String, NodeId> {
        let written: HashSet<&str> = self
            .scalar_accesses
            .iter()
            .filter(|a| a.is_write)
            .map(|a| a.name.as_str())
            .collect();
        self.local_decls
            .iter()
            .filter(|d| !d.is_array && !written.contains(d.name.as_str()))
            .filter_map(|d| d.init.map(|init| (d.name.clone(), init)))
            .collect()
    }

    /// Names provably loop-invariant inside the region: referenced scalars
    /// that are never written and not declared in the region (a region-local
    /// is re-initialised every iteration, so it is never invariant — its uses
    /// go through substitution or degrade conservatively).
    pub fn invariant(&self) -> HashSet<String> {
        let mut names: HashSet<String> = self
            .scalar_accesses
            .iter()
            .map(|a| a.name.clone())
            .collect();
        for access in &self.scalar_accesses {
            if access.is_write {
                names.remove(&access.name);
            }
        }
        for counter in self.counters.keys() {
            names.remove(counter);
        }
        for decl in &self.local_decls {
            names.remove(&decl.name);
        }
        names
    }

    /// True when `name` is declared inside the region body.
    pub fn is_local(&self, name: &str) -> bool {
        self.local_decls.iter().any(|d| d.name == name)
    }
}

/// Shared input to every lint rule: the AST plus the discovered regions.
pub struct AnalysisContext<'a> {
    /// The translation unit under analysis.
    pub ast: &'a Ast,
    /// Resolved symbol table.
    pub symbols: SymbolTable,
    /// Constants folded from declarations (instantiated problem sizes).
    pub env: ConstEnv,
    /// One entry per OpenMP loop directive.
    pub regions: Vec<ParallelRegion>,
}

impl<'a> AnalysisContext<'a> {
    /// Discover every parallel region of `ast` and collect its access sets.
    pub fn build(ast: &'a Ast) -> Self {
        let symbols = resolve(ast);
        let env = collect_const_env(ast);
        let mut regions = Vec::new();
        for (id, node) in ast.iter() {
            if !matches!(
                node.kind,
                AstKind::OmpParallelForDirective
                    | AstKind::OmpTargetTeamsDistributeParallelForDirective
                    | AstKind::OmpSimdDirective
            ) {
                continue;
            }
            let Some(directive) = node.data.omp.clone() else {
                continue;
            };
            regions.push(build_region(ast, &env, id, directive));
        }
        AnalysisContext {
            ast,
            symbols,
            env,
            regions,
        }
    }
}

fn span_of(ast: &Ast, node: NodeId) -> Option<SourceSpan> {
    ast.node(node).data.loc.map(SourceSpan::from)
}

fn build_region(
    ast: &Ast,
    env: &ConstEnv,
    directive_node: NodeId,
    directive: OmpDirective,
) -> ParallelRegion {
    let associated = ast.children(directive_node).first().copied();
    let for_stmt = associated.filter(|&s| ast.kind(s) == AstKind::ForStmt);

    let mut clause_private = HashSet::new();
    let mut clause_reductions = Vec::new();
    for clause in &directive.clauses {
        match clause {
            OmpClause::Private(vars) | OmpClause::FirstPrivate(vars) => {
                clause_private.extend(vars.iter().cloned());
            }
            OmpClause::Reduction(op, vars) => {
                for var in vars {
                    clause_reductions.push((op.clone(), var.clone()));
                }
            }
            _ => {}
        }
    }

    let mut region = ParallelRegion {
        directive_node,
        directive,
        for_stmt,
        span: span_of(ast, directive_node).or_else(|| for_stmt.and_then(|f| span_of(ast, f))),
        defect: None,
        counters: BTreeMap::new(),
        parallel_counters: Vec::new(),
        array_accesses: Vec::new(),
        scalar_accesses: Vec::new(),
        local_decls: Vec::new(),
        calls: Vec::new(),
        opaque_writes: Vec::new(),
        clause_private,
        clause_reductions,
    };

    let Some(for_stmt) = for_stmt else {
        region.defect = Some("directive is not bound to a for loop".into());
        return region;
    };

    let nest = loop_nest(ast, for_stmt, env);
    let parallel_depth = region.directive.collapse_depth() as usize;
    classify_counters(&nest, parallel_depth, &mut region);

    let mut walker = Walker {
        ast,
        region: &mut region,
        order: 0,
    };
    walker.walk(for_stmt, false);
    region
}

/// Split the nest counters into parallel (the first `collapse` canonical
/// levels) and sequential ones, recording a defect when the parallel part of
/// the nest is not analysable.
fn classify_counters(nest: &[LoopNestLevel], parallel_depth: usize, region: &mut ParallelRegion) {
    let mut duplicates = HashSet::new();
    for depth in 0..parallel_depth {
        let at_depth: Vec<&LoopNestLevel> = nest.iter().filter(|l| l.depth == depth).collect();
        if at_depth.len() != 1 {
            region.defect = Some(format!(
                "collapse({parallel_depth}) needs exactly one loop at depth {depth}, found {}",
                at_depth.len()
            ));
            return;
        }
        match &at_depth[0].info {
            Some(info) => {
                let meta = counter_meta(info, true);
                if region.counters.insert(info.counter.clone(), meta).is_some() {
                    duplicates.insert(info.counter.clone());
                }
                region.parallel_counters.push(info.counter.clone());
            }
            None => {
                let reason = at_depth[0]
                    .shape
                    .map(|s| s.reason().to_string())
                    .unwrap_or_else(|| "loop is not canonical".into());
                region.defect = Some(format!("parallel loop at depth {depth}: {reason}"));
                return;
            }
        }
    }
    for level in nest {
        if level.depth < parallel_depth {
            continue;
        }
        if let Some(info) = &level.info {
            let meta = counter_meta(info, false);
            match region.counters.get(&info.counter) {
                Some(existing) if *existing != meta => {
                    duplicates.insert(info.counter.clone());
                }
                _ => {
                    region.counters.insert(info.counter.clone(), meta);
                }
            }
        }
        // Sequential non-canonical loops need no defect: their counters are
        // simply unknown and subscripts using them degrade conservatively.
    }
    // Two same-named loops with different geometry would alias one variable
    // in the distance equations; drop the name so its uses go conservative.
    for name in duplicates {
        region.counters.remove(&name);
        region.parallel_counters.retain(|c| *c != name);
    }
}

fn counter_meta(info: &pg_frontend::LoopInfo, parallel: bool) -> CounterMeta {
    CounterMeta {
        start: info.start,
        step: info.step,
        span: info
            .trip_count
            .map(|t| (t.saturating_sub(1)).min(i64::MAX as u64) as i64),
        parallel,
    }
}

struct Walker<'a, 'r> {
    ast: &'a Ast,
    region: &'r mut ParallelRegion,
    order: usize,
}

impl Walker<'_, '_> {
    fn next_order(&mut self) -> usize {
        self.order += 1;
        self.order
    }

    fn walk(&mut self, id: NodeId, in_for_slot: bool) {
        let node = self.ast.node(id);
        match node.kind {
            AstKind::ForStmt => {
                let children = self.ast.children(id).to_vec();
                if let Some(&init) = children.first() {
                    self.walk(init, true);
                }
                if let Some(&cond) = children.get(1) {
                    self.walk(cond, false);
                }
                if let Some(&body) = children.get(2) {
                    self.walk(body, false);
                }
                if let Some(&inc) = children.get(3) {
                    self.walk(inc, true);
                }
            }
            AstKind::BinaryOperator if node.data.opcode.as_deref() == Some("=") => {
                let children = self.ast.children(id).to_vec();
                if let (Some(&lhs), rhs) = (children.first(), children.get(1).copied()) {
                    self.record_target(id, lhs, rhs, false, "=", in_for_slot);
                    if let Some(rhs) = rhs {
                        self.walk(rhs, in_for_slot);
                    }
                }
            }
            AstKind::CompoundAssignOperator => {
                let children = self.ast.children(id).to_vec();
                let opcode = node.data.opcode.clone().unwrap_or_default();
                if let (Some(&lhs), rhs) = (children.first(), children.get(1).copied()) {
                    self.record_target(id, lhs, rhs, true, &opcode, in_for_slot);
                    if let Some(rhs) = rhs {
                        self.walk(rhs, in_for_slot);
                    }
                }
            }
            AstKind::UnaryOperator
                if matches!(node.data.opcode.as_deref(), Some("++") | Some("--")) =>
            {
                let opcode = node.data.opcode.clone().unwrap_or_default();
                if let Some(&operand) = self.ast.children(id).first() {
                    self.record_target(id, operand, None, true, &opcode, in_for_slot);
                }
            }
            AstKind::ArraySubscriptExpr => {
                self.record_subscript(id, false, false);
            }
            AstKind::CallExpr => {
                let children = self.ast.children(id).to_vec();
                let callee = children
                    .first()
                    .and_then(|&c| pg_frontend::analysis::referenced_name(self.ast, c))
                    .unwrap_or_default();
                self.region.calls.push((callee, id));
                for &arg in children.iter().skip(1) {
                    self.walk(arg, in_for_slot);
                }
            }
            AstKind::DeclRefExpr => {
                if let Some(name) = node.data.name.clone() {
                    let order = self.next_order();
                    self.region.scalar_accesses.push(ScalarAccess {
                        name,
                        node: id,
                        is_write: false,
                        order,
                        in_for_slot,
                        rhs: None,
                        opcode: None,
                    });
                }
            }
            AstKind::VarDecl => {
                let order = self.next_order();
                let init = self.ast.children(id).first().copied();
                if let Some(name) = node.data.name.clone() {
                    self.region.local_decls.push(LocalDecl {
                        name,
                        node: id,
                        init,
                        order,
                        is_array: !node.data.array_dims.is_empty(),
                    });
                }
                if let Some(init) = init {
                    self.walk(init, in_for_slot);
                }
            }
            _ => {
                for &child in &self.ast.children(id).to_vec() {
                    self.walk(child, in_for_slot);
                }
            }
        }
    }

    /// Record the target of an assignment/increment. Compound operators read
    /// the old value, so they contribute a read access as well.
    fn record_target(
        &mut self,
        op_node: NodeId,
        lhs: NodeId,
        rhs: Option<NodeId>,
        compound: bool,
        opcode: &str,
        in_for_slot: bool,
    ) {
        let target = strip(self.ast, lhs);
        let node = self.ast.node(target);
        match node.kind {
            AstKind::ArraySubscriptExpr => {
                self.record_subscript(target, true, compound);
            }
            AstKind::DeclRefExpr => {
                if let Some(name) = node.data.name.clone() {
                    if compound {
                        let order = self.next_order();
                        self.region.scalar_accesses.push(ScalarAccess {
                            name: name.clone(),
                            node: target,
                            is_write: false,
                            order,
                            in_for_slot,
                            rhs: None,
                            opcode: None,
                        });
                    }
                    let order = self.next_order();
                    self.region.scalar_accesses.push(ScalarAccess {
                        name,
                        node: op_node,
                        is_write: true,
                        order,
                        in_for_slot,
                        rhs,
                        opcode: Some(opcode.to_string()),
                    });
                }
            }
            _ => {
                self.region.opaque_writes.push(op_node);
                self.walk(target, in_for_slot);
            }
        }
    }

    /// Record one (possibly multi-dimensional) subscript access and then walk
    /// its index expressions, which are ordinary reads.
    fn record_subscript(&mut self, subscript: NodeId, is_write: bool, compound: bool) {
        match collect_dims(self.ast, subscript) {
            Some((array, dims)) => {
                if is_write {
                    self.region.array_accesses.push(ArrayAccess {
                        array: array.clone(),
                        node: subscript,
                        is_write: true,
                        subscripts: dims.clone(),
                    });
                }
                if !is_write || compound {
                    self.region.array_accesses.push(ArrayAccess {
                        array,
                        node: subscript,
                        is_write: false,
                        subscripts: dims.clone(),
                    });
                }
                for dim in dims {
                    self.walk(dim, false);
                }
            }
            None => {
                // Subscript on something that is not a named array
                // (`(*p)[i]`, `f(x)[i]`): treat a write conservatively and
                // walk everything as reads.
                if is_write {
                    self.region.opaque_writes.push(subscript);
                }
                for &child in &self.ast.children(subscript).to_vec() {
                    self.walk(child, false);
                }
            }
        }
    }
}

fn strip(ast: &Ast, node: NodeId) -> NodeId {
    let mut current = node;
    loop {
        let n = ast.node(current);
        match n.kind {
            AstKind::ParenExpr | AstKind::ImplicitCastExpr | AstKind::CStyleCastExpr => {
                match n.children.first() {
                    Some(&child) => current = child,
                    None => return current,
                }
            }
            _ => return current,
        }
    }
}

/// Resolve `a[i][j]` chains to the base array name plus the per-dimension
/// index expressions, outermost first.
fn collect_dims(ast: &Ast, subscript: NodeId) -> Option<(String, Vec<NodeId>)> {
    let mut dims = Vec::new();
    let mut current = subscript;
    loop {
        let children = ast.children(current);
        let (&base, &index) = (children.first()?, children.get(1)?);
        dims.push(index);
        let base = strip(ast, base);
        match ast.kind(base) {
            AstKind::ArraySubscriptExpr => current = base,
            AstKind::DeclRefExpr => {
                let name = ast.node(base).data.name.clone()?;
                dims.reverse();
                return Some((name, dims));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_frontend::parse;

    fn region_of(src: &str) -> ParallelRegion {
        let ast = parse(src).unwrap();
        let ctx = AnalysisContext::build(Box::leak(Box::new(ast)));
        assert_eq!(ctx.regions.len(), 1, "expected one region");
        ctx.regions.into_iter().next().unwrap()
    }

    #[test]
    fn counters_and_accesses_are_collected() {
        let region = region_of(
            r#"
            void f(float *a, float *b) {
                #pragma omp parallel for
                for (int i = 0; i < 128; i++) {
                    float acc = 0.0;
                    for (int k = 0; k < 16; k++) {
                        acc += b[i * 16 + k];
                    }
                    a[i] = acc;
                }
            }
            "#,
        );
        assert!(region.defect.is_none());
        assert_eq!(region.parallel_counters, vec!["i".to_string()]);
        assert!(region.counters["i"].parallel);
        assert!(!region.counters["k"].parallel);
        assert_eq!(region.counters["i"].span, Some(127));
        let writes: Vec<&ArrayAccess> = region
            .array_accesses
            .iter()
            .filter(|a| a.is_write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].array, "a");
        let reads: Vec<&ArrayAccess> = region
            .array_accesses
            .iter()
            .filter(|a| !a.is_write)
            .collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].array, "b");
        // `acc` is local with a compound write; counter writes sit in for
        // slots.
        assert!(region.local_decls.iter().any(|d| d.name == "acc"));
        assert!(region
            .scalar_accesses
            .iter()
            .any(|s| s.name == "acc" && s.is_write && !s.in_for_slot));
        assert!(region
            .scalar_accesses
            .iter()
            .filter(|s| s.name == "i" && s.is_write)
            .all(|s| s.in_for_slot));
    }

    #[test]
    fn collapse_promotes_inner_counter_to_parallel() {
        let region = region_of(
            r#"
            void f(float *a) {
                #pragma omp parallel for collapse(2)
                for (int i = 0; i < 8; i++) {
                    for (int j = 0; j < 8; j++) {
                        a[i * 8 + j] = 0.0;
                    }
                }
            }
            "#,
        );
        assert!(region.defect.is_none());
        assert_eq!(
            region.parallel_counters,
            vec!["i".to_string(), "j".to_string()]
        );
        assert!(region.counters["j"].parallel);
    }

    #[test]
    fn compound_array_update_records_read_and_write() {
        let region = region_of(
            r#"
            void f(float *a) {
                #pragma omp parallel for
                for (int i = 0; i < 8; i++) { a[i] += 1.0; }
            }
            "#,
        );
        let on_a: Vec<&ArrayAccess> = region
            .array_accesses
            .iter()
            .filter(|x| x.array == "a")
            .collect();
        assert_eq!(on_a.len(), 2);
        assert!(on_a.iter().any(|x| x.is_write));
        assert!(on_a.iter().any(|x| !x.is_write));
    }

    #[test]
    fn non_loop_directive_records_defect() {
        let region = region_of(
            r#"
            void f(float *a) {
                #pragma omp parallel for
                a[0] = 1.0;
            }
            "#,
        );
        assert!(region.defect.is_some());
    }

    #[test]
    fn substitutable_and_invariant_sets() {
        let region = region_of(
            r#"
            void f(float *a, int *idx, int off) {
                #pragma omp parallel for
                for (int i = 0; i < 8; i++) {
                    int j = idx[i];
                    a[j + off] = 0.0;
                }
            }
            "#,
        );
        assert!(region.substitutable().contains_key("j"));
        assert!(region.invariant().contains("off"));
        assert!(!region.invariant().contains("j"));
    }
}
