//! Loop-carried dependence tests over pairs of affine accesses.
//!
//! Given two affine subscript vectors into the same array (at least one of
//! them a write), decide whether two *different* parallel iterations of the
//! enclosing nest can touch the same element. The machinery is the classic
//! lattice — ZIV, strong SIV and GCD refutation, a bounded unique-solve in
//! the spirit of the mixed-radix (Banerjee) condition for exactly-solvable
//! multi-term subscripts, and Banerjee bounds for coupled subscripts —
//! falling back to "assume dependence" whenever a test cannot conclude.

use crate::affine::{AffineForm, CounterMeta};
use std::collections::BTreeMap;

/// Outcome of testing one access pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairVerdict {
    /// Provably no two iterations collide.
    NoDep,
    /// Collisions exist but only between iterations of sequential (per-thread)
    /// loops; the parallel iteration indices always agree.
    SeqOnly,
    /// Two different parallel iterations can touch the same element.
    Parallel(String),
    /// The tests could not conclude; treated as a dependence.
    Unknown(String),
}

/// Maximum number of concrete solutions the bounded solver keeps per
/// subscript dimension before declaring the search inconclusive.
const MAX_SOLUTIONS: usize = 4;
/// Maximum candidate values explored per solver level.
const MAX_CANDIDATES: i128 = 16;
/// Global step budget for the bounded solver.
const MAX_STEPS: u32 = 256;

/// One iteration-distance solution: counter name → `d = e − e'`.
type Solution = BTreeMap<String, i64>;

enum DimOutcome {
    /// No solution in bounds: the dimension alone refutes the dependence.
    Refuted,
    /// Equal coefficient vectors; the distance equation was solved.
    Solved {
        solutions: Vec<Solution>,
        complete: bool,
        /// Counters appearing with a nonzero coefficient.
        vars: Vec<String>,
    },
    /// Coupled/symbolic subscripts the solver does not model exactly.
    Opaque,
}

/// Test one pair of same-array accesses for a parallel-loop-carried
/// dependence. `dims1`/`dims2` must have equal length (one affine form per
/// subscript dimension); `same_node` marks the degenerate self-pair of a
/// single access, whose `d = 0` identity solution is not a dependence.
pub fn test_pair(
    dims1: &[AffineForm],
    dims2: &[AffineForm],
    counters: &BTreeMap<String, CounterMeta>,
    same_node: bool,
) -> PairVerdict {
    if dims1.len() != dims2.len() {
        return PairVerdict::Unknown("subscript dimensionality differs".into());
    }
    let mut dim_results = Vec::with_capacity(dims1.len());
    for (f1, f2) in dims1.iter().zip(dims2) {
        match test_dim(f1, f2, counters) {
            DimOutcome::Refuted => return PairVerdict::NoDep,
            other => dim_results.push(other),
        }
    }

    // A dependence needs every dimension satisfied simultaneously. Start from
    // the trivial solution and refine it through each solved dimension; any
    // opaque dimension leaves the pair unresolvable.
    let mut merged: Vec<Solution> = vec![Solution::new()];
    let mut complete = true;
    let mut used_vars: Vec<String> = Vec::new();
    for dim in &dim_results {
        match dim {
            DimOutcome::Refuted => unreachable!("refuted dims return early"),
            DimOutcome::Opaque => {
                return PairVerdict::Unknown(
                    "subscripts are coupled or symbolic beyond the dependence tests".into(),
                )
            }
            DimOutcome::Solved {
                solutions,
                complete: dim_complete,
                vars,
            } => {
                complete &= dim_complete;
                for v in vars {
                    if !used_vars.contains(v) {
                        used_vars.push(v.clone());
                    }
                }
                let mut next = Vec::new();
                for base in &merged {
                    for sol in solutions {
                        if let Some(combined) = merge_solutions(base, sol) {
                            if !next.contains(&combined) {
                                next.push(combined);
                            }
                        }
                    }
                }
                merged = next;
            }
        }
    }

    if merged.is_empty() {
        return if complete {
            PairVerdict::NoDep
        } else {
            PairVerdict::Unknown("distance equation too complex to solve".into())
        };
    }

    // A counter absent from every subscript leaves its distance free: if such
    // a counter is parallel (and actually iterates), two different parallel
    // iterations reach the same element.
    let free_parallel = counters
        .iter()
        .find(|(name, meta)| meta.parallel && meta.span != Some(0) && !used_vars.contains(*name));
    if let Some((name, _)) = free_parallel {
        return PairVerdict::Parallel(format!(
            "element is reachable from every iteration of parallel loop `{name}`"
        ));
    }

    let mut any_cross_iteration = false;
    for sol in &merged {
        if let Some((name, d)) = sol
            .iter()
            .find(|(name, &d)| d != 0 && counters.get(*name).is_some_and(|m| m.parallel))
        {
            return PairVerdict::Parallel(format!(
                "iterations of parallel loop `{name}` at distance {d} touch the same element"
            ));
        }
        if sol.values().any(|&d| d != 0) {
            any_cross_iteration = true;
        }
    }
    if !complete {
        return PairVerdict::Unknown("distance equation has an unexplored solution space".into());
    }
    if same_node && merged.iter().all(|s| s.values().all(|&d| d == 0)) {
        // The only collision is the access with itself in the same iteration.
        return PairVerdict::NoDep;
    }
    if any_cross_iteration {
        PairVerdict::SeqOnly
    } else {
        // Distinct accesses meeting only at distance zero run in one
        // iteration of every loop — ordinary sequential execution.
        PairVerdict::NoDep
    }
}

fn merge_solutions(a: &Solution, b: &Solution) -> Option<Solution> {
    let mut out = a.clone();
    for (name, &d) in b {
        match out.get(name) {
            Some(&existing) if existing != d => return None,
            _ => {
                out.insert(name.clone(), d);
            }
        }
    }
    Some(out)
}

fn test_dim(
    f1: &AffineForm,
    f2: &AffineForm,
    counters: &BTreeMap<String, CounterMeta>,
) -> DimOutcome {
    // Loop-invariant symbols cancel only when both sides carry identical
    // symbolic parts; otherwise the difference is unknowable.
    if f1.symbols != f2.symbols {
        return DimOutcome::Opaque;
    }
    if f1.terms == f2.terms {
        // Equal coefficient vectors: substitute d = e − e' and solve
        // Σ c·d = T over bounded distances.
        let Some(t) = f2.constant.checked_sub(f1.constant) else {
            return DimOutcome::Opaque;
        };
        let coeffs: Vec<(String, i64, Option<i64>)> = f1
            .terms
            .iter()
            .map(|(name, &c)| {
                let span = counters.get(name).and_then(|m| m.span);
                (name.clone(), c, span)
            })
            .collect();
        solve_distance(&coeffs, t)
    } else {
        // Coupled subscripts (different coefficient vectors): refutation-only
        // via a 2n-variable GCD test and Banerjee-style bounds.
        refute_coupled(f1, f2, counters)
    }
}

/// Solve `Σ c_i·d_i = t` with `|d_i| ≤ span_i`, collecting up to
/// [`MAX_SOLUTIONS`] solutions via a bounded DFS ordered by descending
/// coefficient magnitude (the mixed-radix order in which well-separated
/// coefficient vectors admit unique greedy solutions).
fn solve_distance(coeffs: &[(String, i64, Option<i64>)], t: i64) -> DimOutcome {
    // ZIV: no counter terms at all.
    if coeffs.is_empty() {
        return if t == 0 {
            DimOutcome::Solved {
                solutions: vec![Solution::new()],
                complete: true,
                vars: Vec::new(),
            }
        } else {
            DimOutcome::Refuted
        };
    }
    // GCD refutation.
    let g = coeffs.iter().fold(0i64, |g, (_, c, _)| gcd(g, c.abs()));
    if g != 0 && t % g != 0 {
        return DimOutcome::Refuted;
    }
    let mut sorted: Vec<&(String, i64, Option<i64>)> = coeffs.iter().collect();
    sorted.sort_by_key(|(_, c, _)| std::cmp::Reverse(c.abs()));
    // tail[k] = max |Σ_{j>k} c_j·d_j| given the spans, None when unbounded.
    let mut tails: Vec<Option<i128>> = vec![Some(0); sorted.len()];
    for k in (0..sorted.len().saturating_sub(1)).rev() {
        let (_, c, span) = sorted[k + 1];
        tails[k] = match (tails[k + 1], span) {
            (Some(tail), Some(s)) => Some(tail + (c.abs() as i128) * (*s as i128)),
            _ => None,
        };
    }

    let mut solutions = Vec::new();
    let mut complete = true;
    let mut steps = 0u32;
    dfs(
        &sorted,
        &tails,
        0,
        t as i128,
        &mut Solution::new(),
        &mut solutions,
        &mut complete,
        &mut steps,
    );
    if solutions.is_empty() && complete {
        return DimOutcome::Refuted;
    }
    DimOutcome::Solved {
        solutions,
        complete,
        vars: coeffs.iter().map(|(n, _, _)| n.clone()).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    sorted: &[&(String, i64, Option<i64>)],
    tails: &[Option<i128>],
    level: usize,
    remaining: i128,
    current: &mut Solution,
    solutions: &mut Vec<Solution>,
    complete: &mut bool,
    steps: &mut u32,
) {
    *steps += 1;
    if *steps > MAX_STEPS {
        *complete = false;
        return;
    }
    if level == sorted.len() {
        if remaining == 0 {
            if solutions.len() < MAX_SOLUTIONS {
                solutions.push(current.clone());
            } else {
                *complete = false;
            }
        }
        return;
    }
    let (name, c, span) = sorted[level];
    let c = *c as i128;
    // Feasible d satisfy |remaining − c·d| ≤ tail and |d| ≤ span.
    let (mut lo, mut hi) = match tails[level] {
        Some(tail) => {
            let x_lo = remaining - tail;
            let x_hi = remaining + tail;
            if c > 0 {
                (div_ceil(x_lo, c), div_floor(x_hi, c))
            } else {
                (div_ceil(x_hi, c), div_floor(x_lo, c))
            }
        }
        None => match span {
            Some(s) => (-(*s as i128), *s as i128),
            None => {
                *complete = false;
                return;
            }
        },
    };
    if let Some(s) = span {
        lo = lo.max(-(*s as i128));
        hi = hi.min(*s as i128);
    }
    if hi - lo >= MAX_CANDIDATES {
        *complete = false;
        return;
    }
    let mut d = lo;
    while d <= hi {
        current.insert(name.clone(), d as i64);
        dfs(
            sorted,
            tails,
            level + 1,
            remaining - c * d,
            current,
            solutions,
            complete,
            steps,
        );
        current.remove(name);
        d += 1;
    }
}

fn refute_coupled(
    f1: &AffineForm,
    f2: &AffineForm,
    counters: &BTreeMap<String, CounterMeta>,
) -> DimOutcome {
    let t = (f2.constant as i128) - (f1.constant as i128);
    // GCD over all 2n coefficients.
    let mut g = 0i64;
    for c in f1.terms.values().chain(f2.terms.values()) {
        g = gcd(g, c.abs());
    }
    if g != 0 && t % (g as i128) != 0 {
        return DimOutcome::Refuted;
    }
    // Banerjee bounds for Σ c1·e − Σ c2·e' with e, e' ∈ [0, span].
    let mut min = 0i128;
    let mut max = 0i128;
    let mut bounded = true;
    let mut add_range = |coeff: i64, span: Option<i64>, negated: bool| {
        let c = if negated { -coeff } else { coeff } as i128;
        match span {
            Some(s) => {
                let reach = c * (s as i128);
                if reach >= 0 {
                    max += reach;
                } else {
                    min += reach;
                }
            }
            None => {
                if c != 0 {
                    bounded = false;
                }
            }
        }
    };
    for (name, &c) in &f1.terms {
        add_range(c, counters.get(name).and_then(|m| m.span), false);
    }
    for (name, &c) in &f2.terms {
        add_range(c, counters.get(name).and_then(|m| m.span), true);
    }
    if bounded && (t < min || t > max) {
        return DimOutcome::Refuted;
    }
    DimOutcome::Opaque
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(span: i64, parallel: bool) -> CounterMeta {
        CounterMeta {
            start: Some(0),
            step: 1,
            span: Some(span),
            parallel,
        }
    }

    fn form(constant: i64, terms: &[(&str, i64)]) -> AffineForm {
        let mut f = AffineForm::constant(constant);
        for (name, c) in terms {
            f.terms.insert(name.to_string(), *c);
        }
        f
    }

    fn counters(entries: &[(&str, i64, bool)]) -> BTreeMap<String, CounterMeta> {
        entries
            .iter()
            .map(|(n, s, p)| (n.to_string(), meta(*s, *p)))
            .collect()
    }

    #[test]
    fn injective_write_is_independent() {
        // a[i] vs itself under parallel i.
        let c = counters(&[("i", 1023, true)]);
        let f = [form(0, &[("i", 1)])];
        assert_eq!(test_pair(&f, &f, &c, true), PairVerdict::NoDep);
    }

    #[test]
    fn missing_parallel_counter_races() {
        // a[j] written under parallel i, sequential j.
        let c = counters(&[("i", 1023, true), ("j", 15, false)]);
        let f = [form(0, &[("j", 1)])];
        assert!(matches!(
            test_pair(&f, &f, &c, true),
            PairVerdict::Parallel(_)
        ));
    }

    #[test]
    fn distance_one_stencil_races() {
        // write a[i], read a[i-1] under parallel i.
        let c = counters(&[("i", 1023, true)]);
        let w = [form(0, &[("i", 1)])];
        let r = [form(-1, &[("i", 1)])];
        assert!(matches!(
            test_pair(&w, &r, &c, false),
            PairVerdict::Parallel(_)
        ));
    }

    #[test]
    fn sequential_carried_distance_is_safe() {
        // write a[i*64 + j], read a[i*64 + j + 1]: carried only on j.
        let c = counters(&[("i", 61, true), ("j", 61, false)]);
        let w = [form(0, &[("i", 64), ("j", 1)])];
        let r = [form(1, &[("i", 64), ("j", 1)])];
        assert_eq!(test_pair(&w, &r, &c, false), PairVerdict::SeqOnly);
    }

    #[test]
    fn row_offset_races_across_parallel_rows() {
        // write a[i*64 + j], read a[(i-1)*64 + j]: distance (1, 0).
        let c = counters(&[("i", 61, true), ("j", 61, false)]);
        let w = [form(0, &[("i", 64), ("j", 1)])];
        let r = [form(-64, &[("i", 64), ("j", 1)])];
        assert!(matches!(
            test_pair(&w, &r, &c, false),
            PairVerdict::Parallel(_)
        ));
    }

    #[test]
    fn gcd_refutes_stride_mismatch() {
        // write a[2i], read a[2i + 1]: parity never matches.
        let c = counters(&[("i", 1023, true)]);
        let w = [form(0, &[("i", 2)])];
        let r = [form(1, &[("i", 2)])];
        assert_eq!(test_pair(&w, &r, &c, false), PairVerdict::NoDep);
    }

    #[test]
    fn flattened_2d_write_is_injective_when_strides_separate() {
        // c[i*64 + j], spans 63: |64| > 1·63 → unique solution d = 0.
        let c = counters(&[("i", 63, true), ("j", 63, true)]);
        let f = [form(0, &[("i", 64), ("j", 1)])];
        assert_eq!(test_pair(&f, &f, &c, true), PairVerdict::NoDep);
    }

    #[test]
    fn flattened_write_races_when_rows_overlap() {
        // a[i*4 + j] with j spanning 0..=7 overruns the row stride.
        let c = counters(&[("i", 63, true), ("j", 7, false)]);
        let f = [form(0, &[("i", 4), ("j", 1)])];
        assert!(matches!(
            test_pair(&f, &f, &c, true),
            PairVerdict::Parallel(_)
        ));
    }

    #[test]
    fn ziv_pair_on_shared_element_races() {
        // write s[0] every iteration of parallel i.
        let c = counters(&[("i", 1023, true)]);
        let f = [form(0, &[])];
        assert!(matches!(
            test_pair(&f, &f, &c, true),
            PairVerdict::Parallel(_)
        ));
    }

    #[test]
    fn ziv_distinct_constants_are_independent() {
        let c = counters(&[("i", 1023, true)]);
        let w = [form(0, &[("i", 1)])];
        let r = [form(-5, &[])];
        // Coupled (different coefficient vectors) — Banerjee refutes: i ≥ 0
        // but the read sits at −5.
        assert_eq!(test_pair(&w, &r, &c, false), PairVerdict::NoDep);
    }

    #[test]
    fn coupled_unrefutable_pair_is_unknown() {
        // write a[2i], read a[i]: collisions exist (even i).
        let c = counters(&[("i", 1023, true)]);
        let w = [form(0, &[("i", 2)])];
        let r = [form(0, &[("i", 1)])];
        assert!(matches!(
            test_pair(&w, &r, &c, false),
            PairVerdict::Unknown(_)
        ));
    }

    #[test]
    fn symbol_mismatch_is_unknown() {
        let c = counters(&[("i", 1023, true)]);
        let mut w = form(0, &[("i", 1)]);
        w.symbols.insert("off".into(), 1);
        let r = form(0, &[("i", 1)]);
        assert!(matches!(
            test_pair(&[w], &[r], &c, false),
            PairVerdict::Unknown(_)
        ));
    }

    #[test]
    fn matching_symbols_cancel() {
        let c = counters(&[("i", 1023, true)]);
        let mut w = form(0, &[("i", 1)]);
        w.symbols.insert("off".into(), 1);
        let r = w.clone();
        assert_eq!(test_pair(&[w], &[r], &c, false), PairVerdict::NoDep);
    }

    #[test]
    fn multi_dim_consistency_refutes() {
        // write a[i][i] vs read a[i][i+1]: the first dimension forces
        // d_i = 0, the second d_i = 1 — no simultaneous solution.
        let c = counters(&[("i", 1023, true)]);
        let w = [form(0, &[("i", 1)]), form(0, &[("i", 1)])];
        let r = [form(0, &[("i", 1)]), form(1, &[("i", 1)])];
        assert_eq!(test_pair(&w, &r, &c, false), PairVerdict::NoDep);
    }

    #[test]
    fn unknown_span_single_counter_still_injective() {
        // a[i] with unknown trip count: a single nonzero coefficient forces
        // d = 0 regardless of span.
        let mut c = counters(&[("i", 0, true)]);
        c.get_mut("i").unwrap().span = None;
        let f = [form(0, &[("i", 1)])];
        assert_eq!(test_pair(&f, &f, &c, true), PairVerdict::NoDep);
    }
}
