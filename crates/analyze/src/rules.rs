//! The lint-rule framework and the shipped rule set.
//!
//! Every rule sees the same [`AnalysisContext`] and appends to a shared
//! [`DiagnosticSink`]; the verdict is derived afterwards from the collected
//! severities. New rules plug in by implementing [`LintRule`] and joining
//! [`default_rules`] (or a caller-assembled rule list).

use crate::affine::{extract, ExtractCtx};
use crate::deps::{test_pair, PairVerdict};
use crate::region::{AnalysisContext, ParallelRegion, ScalarAccess};
use crate::{Diagnostic, Severity, SourceSpan};
use pg_frontend::{AstKind, NodeId, OmpClause};
use std::collections::{BTreeMap, BTreeSet};

/// Math intrinsics with no side effects on kernel arrays: calling them inside
/// a parallel loop is safe.
const PURE_CALLS: &[&str] = &[
    "sqrt", "sqrtf", "exp", "expf", "fabs", "fabsf", "abs", "log", "logf", "pow", "powf", "sin",
    "sinf", "cos", "cosf", "tan", "tanf", "floor", "floorf", "ceil", "ceilf", "fmin", "fminf",
    "fmax", "fmaxf",
];

/// Collects diagnostics and clause suggestions while rules run.
#[derive(Debug, Default)]
pub struct DiagnosticSink {
    /// Diagnostics in emission order.
    pub diagnostics: Vec<Diagnostic>,
    /// OpenMP clauses that would make the loop safe (`reduction(+:s)`, ...).
    pub suggestions: Vec<String>,
}

impl DiagnosticSink {
    /// Emit an error-severity diagnostic.
    pub fn error(&mut self, rule: &str, span: Option<SourceSpan>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Error,
            span,
            message: message.into(),
        });
    }

    /// Emit a warning-severity diagnostic.
    pub fn warning(&mut self, rule: &str, span: Option<SourceSpan>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            span,
            message: message.into(),
        });
    }

    /// Record a clause that would repair the loop.
    pub fn suggest(&mut self, clause: String) {
        if !self.suggestions.contains(&clause) {
            self.suggestions.push(clause);
        }
    }
}

/// One static-analysis rule over a shared [`AnalysisContext`].
pub trait LintRule {
    /// Primary rule id this rule emits (informational; a rule may emit
    /// closely related ids).
    fn id(&self) -> &'static str;
    /// Inspect the context and append findings to the sink.
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink);
}

/// The shipped rule set, in emission order.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(UnknownClauseRule),
        Box::new(NonCanonicalLoopRule),
        Box::new(OpaqueCallRule),
        Box::new(LoopIndexWriteRule),
        Box::new(UninitializedReadRule),
        Box::new(SharedScalarRule),
        Box::new(DependenceRule),
    ]
}

fn node_span(ctx: &AnalysisContext<'_>, node: NodeId) -> Option<SourceSpan> {
    ctx.ast.node(node).data.loc.map(SourceSpan::from)
}

/// Flags `OmpClause::Unknown` on every directive in the translation unit.
pub struct UnknownClauseRule;

impl LintRule for UnknownClauseRule {
    fn id(&self) -> &'static str {
        "unknown-clause"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for (id, node) in ctx.ast.iter() {
            let Some(directive) = &node.data.omp else {
                continue;
            };
            for clause in &directive.clauses {
                if let OmpClause::Unknown(text) = clause {
                    sink.warning(
                        "unknown-clause",
                        node_span(ctx, id),
                        format!("unrecognised or malformed OpenMP clause `{text}` is ignored"),
                    );
                }
            }
        }
    }
}

/// A parallel loop directive whose nest cannot be analysed is rejected
/// outright: nothing can be said about its memory behaviour.
pub struct NonCanonicalLoopRule;

impl LintRule for NonCanonicalLoopRule {
    fn id(&self) -> &'static str {
        "non-canonical-loop"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for region in &ctx.regions {
            if let Some(defect) = &region.defect {
                sink.error("non-canonical-loop", region.span, defect.clone());
            }
        }
    }
}

/// Calls to anything but known pure math intrinsics inside a parallel loop
/// have unknown side effects.
pub struct OpaqueCallRule;

impl LintRule for OpaqueCallRule {
    fn id(&self) -> &'static str {
        "opaque-call"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for region in &ctx.regions {
            for (callee, node) in &region.calls {
                if !PURE_CALLS.contains(&callee.as_str()) {
                    let shown = if callee.is_empty() { "<expr>" } else { callee };
                    sink.error(
                        "opaque-call",
                        node_span(ctx, *node),
                        format!(
                            "call to `{shown}` inside a parallel loop has unknown side effects"
                        ),
                    );
                }
            }
        }
    }
}

/// Writing to a loop counter from the loop body breaks the canonical-form
/// contract the whole analysis (and OpenMP itself) relies on.
pub struct LoopIndexWriteRule;

impl LintRule for LoopIndexWriteRule {
    fn id(&self) -> &'static str {
        "loop-index-write"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for region in &ctx.regions {
            for access in &region.scalar_accesses {
                if access.is_write
                    && !access.in_for_slot
                    && region.counters.contains_key(&access.name)
                {
                    sink.error(
                        "loop-index-write",
                        node_span(ctx, access.node),
                        format!("loop body writes to loop counter `{}`", access.name),
                    );
                }
            }
        }
    }
}

/// A region-local scalar declared without an initialiser and read before any
/// write yields garbage (and under `private` semantics, so would the clause).
pub struct UninitializedReadRule;

impl LintRule for UninitializedReadRule {
    fn id(&self) -> &'static str {
        "uninitialized-read"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for region in &ctx.regions {
            for decl in &region.local_decls {
                if decl.init.is_some() || decl.is_array {
                    continue;
                }
                if region.counters.contains_key(&decl.name) {
                    continue;
                }
                let first_write = region
                    .scalar_accesses
                    .iter()
                    .filter(|a| a.is_write && a.name == decl.name && a.order > decl.order)
                    .map(|a| a.order)
                    .min();
                let first_read = region
                    .scalar_accesses
                    .iter()
                    .filter(|a| !a.is_write && a.name == decl.name && a.order > decl.order)
                    .map(|a| a.order)
                    .min();
                if let Some(read) = first_read {
                    if first_write.is_none_or(|write| read < write) {
                        sink.warning(
                            "uninitialized-read",
                            node_span(ctx, decl.node),
                            format!("`{}` may be read before it is first written", decl.name),
                        );
                    }
                }
            }
        }
    }
}

/// Shared-scalar classification: OpenMP data-sharing defaults make every
/// scalar declared outside the loop shared, so any write to one from the
/// body is a race unless it matches a declared reduction, a recognised
/// reduction idiom (repairable with a `reduction` clause) or a
/// write-before-read temporary (repairable with `private`).
pub struct SharedScalarRule;

/// Writes grouped per scalar for idiom matching.
struct ScalarWrites<'a> {
    writes: Vec<&'a ScalarAccess>,
    reads: Vec<&'a ScalarAccess>,
}

impl LintRule for SharedScalarRule {
    fn id(&self) -> &'static str {
        "shared-scalar-race"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for region in &ctx.regions {
            let mut by_name: BTreeMap<&str, ScalarWrites<'_>> = BTreeMap::new();
            for access in &region.scalar_accesses {
                if access.in_for_slot || region.counters.contains_key(&access.name) {
                    continue;
                }
                let entry = by_name.entry(access.name.as_str()).or_insert(ScalarWrites {
                    writes: Vec::new(),
                    reads: Vec::new(),
                });
                if access.is_write {
                    entry.writes.push(access);
                } else {
                    entry.reads.push(access);
                }
            }

            for (name, info) in &by_name {
                if info.writes.is_empty() {
                    continue;
                }
                if region.clause_private.contains(*name) || region.is_local(name) {
                    continue;
                }
                if let Some((op, _)) = region.clause_reductions.iter().find(|(_, var)| var == name)
                {
                    // Declared reduction: verify every write matches the
                    // declared operator's idiom.
                    let bad = info
                        .writes
                        .iter()
                        .find(|w| reduction_op(ctx, w, name) != Some(op.clone()));
                    if let Some(w) = bad {
                        sink.error(
                            "reduction-unproven",
                            node_span(ctx, w.node),
                            format!(
                                "`{name}` is declared `reduction({op}:{name})` but this update \
                                 does not match the `{op}` reduction idiom"
                            ),
                        );
                    }
                    continue;
                }

                // Shared scalar written from the body.
                let span = node_span(ctx, info.writes[0].node);
                let ops: BTreeSet<Option<String>> = info
                    .writes
                    .iter()
                    .map(|w| reduction_op(ctx, w, name))
                    .collect();
                let single_op = if ops.len() == 1 {
                    ops.into_iter().next().unwrap()
                } else {
                    None
                };
                if let Some(op) = single_op {
                    // Every write is `s = s ⊕ e`; reads outside those updates
                    // would observe partial sums, so only suggest the clause
                    // when the updates are the whole story.
                    let update_reads: Vec<usize> = info.writes.iter().map(|w| w.order).collect();
                    let stray_read = info.reads.iter().any(|r| {
                        !update_reads
                            .iter()
                            .any(|&w| r.order >= w.saturating_sub(4) && r.order <= w + 4)
                    });
                    if !stray_read {
                        sink.warning(
                            "shared-scalar-race",
                            span,
                            format!(
                                "shared scalar `{name}` accumulates across iterations without a \
                                 reduction; add `reduction({op}:{name})`"
                            ),
                        );
                        sink.suggest(format!("reduction({op}:{name})"));
                        continue;
                    }
                }
                // Write-before-read temporary: privatisable.
                let first_write = info.writes.iter().map(|w| w.order).min().unwrap_or(0);
                let read_before_write = info.reads.iter().any(|r| r.order < first_write);
                let plain_first_write = info
                    .writes
                    .iter()
                    .min_by_key(|w| w.order)
                    .is_some_and(|w| w.opcode.as_deref() == Some("="));
                if !read_before_write && plain_first_write {
                    sink.warning(
                        "shared-scalar-race",
                        span,
                        format!(
                            "shared scalar `{name}` is used as a per-iteration temporary; \
                             add `private({name})`"
                        ),
                    );
                    sink.suggest(format!("private({name})"));
                } else {
                    sink.error(
                        "shared-scalar-race",
                        span,
                        format!(
                            "concurrent iterations read and write shared scalar `{name}` \
                             without a reduction or privatisation"
                        ),
                    );
                }
            }
        }
    }
}

/// When `write` is a reduction-style update of `name` (`s += e`, `s = s + e`,
/// `s *= e`, ...), return the reduction operator, else `None`. The update
/// expression must not read `name` beyond the single self-reference.
fn reduction_op(ctx: &AnalysisContext<'_>, write: &ScalarAccess, name: &str) -> Option<String> {
    let self_reads_in = |node: NodeId| -> usize {
        ctx.ast
            .preorder_from(node)
            .into_iter()
            .filter(|&id| {
                ctx.ast.kind(id) == AstKind::DeclRefExpr
                    && ctx.ast.node(id).data.name.as_deref() == Some(name)
            })
            .count()
    };
    match write.opcode.as_deref() {
        Some("+=") | Some("++") => {
            if write.rhs.is_none_or(|r| self_reads_in(r) == 0) {
                Some("+".to_string())
            } else {
                None
            }
        }
        Some("-=") | Some("--") => {
            if write.rhs.is_none_or(|r| self_reads_in(r) == 0) {
                Some("-".to_string())
            } else {
                None
            }
        }
        Some("*=") => {
            if write.rhs.is_none_or(|r| self_reads_in(r) == 0) {
                Some("*".to_string())
            } else {
                None
            }
        }
        Some("=") => {
            let rhs = write.rhs?;
            let node = ctx.ast.node(rhs);
            if node.kind != AstKind::BinaryOperator {
                return None;
            }
            let op = node.data.opcode.as_deref()?;
            if !matches!(op, "+" | "*" | "-") {
                return None;
            }
            let lhs_child = *node.children.first()?;
            let rhs_child = *node.children.get(1)?;
            let is_self = |id: NodeId| {
                pg_frontend::analysis::referenced_name(ctx.ast, id).as_deref() == Some(name)
            };
            // `s = s + e` or `s = e + s` (subtraction only in `s = s - e`
            // form); `e` must not mention `s` again.
            let other = if is_self(lhs_child) {
                rhs_child
            } else if is_self(rhs_child) && op != "-" {
                lhs_child
            } else {
                return None;
            };
            if self_reads_in(other) == 0 {
                Some(op.to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The dependence rule proper: affine subscript lowering plus the pair tests
/// from [`crate::deps`] over every written array.
pub struct DependenceRule;

impl LintRule for DependenceRule {
    fn id(&self) -> &'static str {
        "loop-carried-dependence"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut DiagnosticSink) {
        for region in &ctx.regions {
            if region.defect.is_some() {
                // Already rejected by NonCanonicalLoopRule; the counters are
                // meaningless.
                continue;
            }
            check_region_dependences(ctx, region, sink);
        }
    }
}

fn check_region_dependences(
    ctx: &AnalysisContext<'_>,
    region: &ParallelRegion,
    sink: &mut DiagnosticSink,
) {
    for node in &region.opaque_writes {
        sink.error(
            "non-affine-subscript",
            node_span(ctx, *node),
            "assignment target is not a scalar or a named array element; assuming a dependence",
        );
    }

    let substitutable = region.substitutable();
    let invariant = region.invariant();
    let ectx = ExtractCtx {
        ast: ctx.ast,
        counters: &region.counters,
        env: &ctx.env,
        substitutable: &substitutable,
        invariant: &invariant,
    };

    // Group accesses per array, writes first.
    let mut arrays: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, access) in region.array_accesses.iter().enumerate() {
        arrays.entry(access.array.as_str()).or_default().push(idx);
    }

    for (array, indices) in &arrays {
        if !region
            .array_accesses
            .iter()
            .any(|a| a.array == *array && a.is_write)
        {
            continue; // read-only arrays cannot race
        }
        if region.clause_private.contains(*array) || region.is_local(array) {
            continue; // privatised or per-iteration storage
        }

        // Lower every access; any non-affine subscript on a written array is
        // conservatively a dependence.
        let mut forms: Vec<Option<Vec<crate::affine::AffineForm>>> = Vec::new();
        let mut non_affine = None;
        for &idx in indices {
            let access = &region.array_accesses[idx];
            let lowered: Option<Vec<_>> = access
                .subscripts
                .iter()
                .map(|&s| extract(&ectx, s))
                .collect();
            if lowered.is_none() && non_affine.is_none() {
                non_affine = Some(access.node);
            }
            forms.push(lowered);
        }
        if let Some(node) = non_affine {
            sink.error(
                "non-affine-subscript",
                node_span(ctx, node),
                format!(
                    "subscript into written array `{array}` is not affine in the loop \
                     counters; assuming a dependence"
                ),
            );
            continue;
        }

        // Pairwise tests: write × every access (each unordered pair once).
        // One diagnostic per array keeps the stream readable.
        'pairs: for (i, &wi) in indices.iter().enumerate() {
            let w = &region.array_accesses[wi];
            if !w.is_write {
                continue;
            }
            for (j, &aj) in indices.iter().enumerate() {
                let a = &region.array_accesses[aj];
                // Visit write/write pairs once and always include the
                // self-pair; write/read pairs are direction-agnostic.
                if a.is_write && j < i {
                    continue;
                }
                let same_node = wi == aj || (w.node == a.node);
                let verdict = test_pair(
                    forms[i].as_ref().expect("lowered above"),
                    forms[j].as_ref().expect("lowered above"),
                    &region.counters,
                    same_node,
                );
                match verdict {
                    PairVerdict::NoDep | PairVerdict::SeqOnly => {}
                    PairVerdict::Parallel(detail) | PairVerdict::Unknown(detail) => {
                        sink.error(
                            "loop-carried-dependence",
                            node_span(ctx, w.node),
                            format!("loop-carried dependence on `{array}`: {detail}"),
                        );
                        break 'pairs;
                    }
                }
            }
        }
    }
}
