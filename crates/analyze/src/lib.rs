//! # pg-analyze
//!
//! Static loop-dependence and data-race analysis over the [`pg_frontend`]
//! AST. Every variant the advisor proposes is gated through this crate: a
//! pass discovers the OpenMP parallel regions, builds per-loop read/write
//! sets, classifies scalars under the OpenMP data-sharing rules, runs
//! loop-carried dependence tests on affine subscripts (ZIV / strong SIV /
//! GCD / bounded unique-solve, conservatively assuming a dependence whenever
//! a subscript is non-affine or aliased), and folds the findings into a
//! [`LegalityVerdict`] plus a structured [`Diagnostic`] stream.
//!
//! The contract is *conservative by default*: the analysis never proves a
//! racy loop safe; it may reject a safe loop it cannot reason about, and the
//! catalogue carries an explicit per-kernel tolerance table
//! ([`catalogue_tolerances`]) for the two kernels whose idioms are beyond
//! the affine machinery (the Gauss–Seidel sweep's intentional distance-1
//! dependence and the particle filter's index-indirected moves).
//!
//! ```
//! use pg_analyze::{analyze_source, LegalityVerdict};
//!
//! let safe = analyze_source(
//!     "void scale(float *a) {\n#pragma omp parallel for\nfor (int i = 0; i < 64; i++) { a[i] = a[i] * 2.0; }\n}",
//! );
//! assert_eq!(safe.verdict, LegalityVerdict::Safe);
//!
//! let racy = analyze_source(
//!     "void scan(float *a) {\n#pragma omp parallel for\nfor (int i = 1; i < 64; i++) { a[i] = a[i - 1]; }\n}",
//! );
//! assert!(racy.verdict.is_race());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affine;
pub mod deps;
pub mod region;
pub mod rules;

use pg_frontend::SourceLocation;
use serde::{Deserialize, Serialize};

pub use region::{AnalysisContext, ArrayAccess, LocalDecl, ParallelRegion, ScalarAccess};
pub use rules::{default_rules, DiagnosticSink, LintRule};

/// Every rule id the shipped rule set can emit.
pub const RULE_IDS: &[&str] = &[
    "loop-carried-dependence",
    "non-affine-subscript",
    "shared-scalar-race",
    "reduction-unproven",
    "loop-index-write",
    "uninitialized-read",
    "opaque-call",
    "unknown-clause",
    "non-canonical-loop",
    "parse-error",
];

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Worth surfacing; does not make the variant illegal.
    Warning,
    /// The loop cannot be parallelised as written.
    Error,
}

/// Point in the analysed source a diagnostic anchors to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SourceSpan {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl From<SourceLocation> for SourceSpan {
    fn from(loc: SourceLocation) -> Self {
        SourceSpan {
            line: loc.line,
            column: loc.column,
        }
    }
}

impl std::fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule id (one of [`RULE_IDS`]).
    pub rule: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Source anchor, when the offending node carries one.
    pub span: Option<SourceSpan>,
    /// Human-readable explanation.
    pub message: String,
}

/// The gate's answer for one variant source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LegalityVerdict {
    /// No finding blocks parallel execution.
    Safe,
    /// Safe if the listed clauses are added (e.g. `reduction(+:sum)`).
    SafeWithClauses(Vec<String>),
    /// Parallel execution would race; the message names the first blocker.
    Race(String),
}

impl LegalityVerdict {
    /// True for [`LegalityVerdict::Race`].
    pub fn is_race(&self) -> bool {
        matches!(self, LegalityVerdict::Race(_))
    }

    /// True when the variant may ship as-is (safe, or safe pending clauses —
    /// the gate only prunes provable races).
    pub fn is_admissible(&self) -> bool {
        !self.is_race()
    }
}

/// Verdict plus the full diagnostic stream that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The legality verdict.
    pub verdict: LegalityVerdict,
    /// Findings in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Diagnostics of error severity.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Diagnostics of warning severity.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }
}

/// Per-kernel rule tolerances for the shipped catalogue.
///
/// Two catalogue kernels are intentionally beyond the conservative analysis:
/// the Gauss–Seidel sweep *is* a loop-carried stencil (the paper's variants
/// run it as an asynchronous relaxation, which tolerates the race), and the
/// particle filter's resampling moves particles through an index array the
/// affine tests cannot see through. For those kernels the named rules are
/// downgraded from error to warning; everything else — including hand-seeded
/// race mutants of these same kernels under *other* rules — still gates.
pub fn catalogue_tolerances(kernel_full_name: &str) -> &'static [&'static str] {
    match kernel_full_name {
        "Gauss Seidel/sweep" => &["loop-carried-dependence"],
        "ParticleFilter/move_particles" => &["non-affine-subscript"],
        _ => &[],
    }
}

/// Analyse a source string with the default rule set and no tolerances.
pub fn analyze_source(source: &str) -> AnalysisReport {
    analyze_source_tolerant(source, &[])
}

/// Analyse a source string, downgrading error findings of the `tolerated`
/// rules to warnings before the verdict is derived.
pub fn analyze_source_tolerant(source: &str, tolerated: &[&str]) -> AnalysisReport {
    match pg_frontend::parse(source) {
        Ok(ast) => analyze_ast_tolerant(&ast, tolerated),
        Err(err) => {
            let diag = Diagnostic {
                rule: "parse-error".to_string(),
                severity: Severity::Error,
                span: None,
                message: format!("source failed to parse: {err}"),
            };
            AnalysisReport {
                verdict: LegalityVerdict::Race(diag.message.clone()),
                diagnostics: vec![diag],
            }
        }
    }
}

/// Analyse an already-parsed AST with the default rule set.
pub fn analyze_ast(ast: &pg_frontend::Ast) -> AnalysisReport {
    analyze_ast_tolerant(ast, &[])
}

/// Analyse an already-parsed AST, tolerating the named rules.
pub fn analyze_ast_tolerant(ast: &pg_frontend::Ast, tolerated: &[&str]) -> AnalysisReport {
    analyze_ast_with(ast, &default_rules(), tolerated)
}

/// Run a caller-assembled rule list over an AST and derive the verdict.
pub fn analyze_ast_with(
    ast: &pg_frontend::Ast,
    rules: &[Box<dyn LintRule>],
    tolerated: &[&str],
) -> AnalysisReport {
    // Every analysis entry point funnels through here, so this one timer
    // is the ground truth for the `analyze` stage histogram (the engine's
    // gate span above it is trace-only).
    let _timer = pg_obs::obs().timer(pg_obs::Stage::Analyze);
    let ctx = AnalysisContext::build(ast);
    let mut sink = DiagnosticSink::default();
    for rule in rules {
        rule.check(&ctx, &mut sink);
    }
    let DiagnosticSink {
        mut diagnostics,
        suggestions,
    } = sink;
    for diag in &mut diagnostics {
        if diag.severity == Severity::Error && tolerated.contains(&diag.rule.as_str()) {
            diag.severity = Severity::Warning;
            diag.message
                .push_str(" [tolerated for this catalogue kernel]");
        }
    }
    let verdict = match diagnostics.iter().find(|d| d.severity == Severity::Error) {
        Some(first_error) => {
            LegalityVerdict::Race(format!("{}: {}", first_error.rule, first_error.message))
        }
        None if !suggestions.is_empty() => LegalityVerdict::SafeWithClauses(suggestions),
        None => LegalityVerdict::Safe,
    };
    AnalysisReport {
        verdict,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(src: &str) -> LegalityVerdict {
        analyze_source(src).verdict
    }

    #[test]
    fn plain_elementwise_loop_is_safe() {
        let report = analyze_source(
            r#"
            void axpy(float *x, float *y) {
                #pragma omp parallel for
                for (int i = 0; i < 1024; i++) { y[i] = y[i] + 2.0 * x[i]; }
            }
            "#,
        );
        assert_eq!(report.verdict, LegalityVerdict::Safe);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn backward_stencil_is_a_race_with_a_span() {
        let report = analyze_source(
            "void f(float *a) {\n    #pragma omp parallel for\n    for (int i = 1; i < 64; i++) {\n        a[i] = a[i - 1];\n    }\n}\n",
        );
        assert!(report.verdict.is_race());
        let dep = report
            .errors()
            .find(|d| d.rule == "loop-carried-dependence")
            .expect("dependence diagnostic");
        // The write `a[i] = ...` sits on line 4.
        assert_eq!(dep.span.map(|s| s.line), Some(4));
    }

    #[test]
    fn serial_source_has_no_regions_and_is_safe() {
        assert_eq!(
            verdict("void f(float *a) { for (int i = 0; i < 8; i++) { a[i] = a[i - 1]; } }"),
            LegalityVerdict::Safe
        );
    }

    #[test]
    fn shared_accumulator_suggests_reduction() {
        let report = analyze_source(
            r#"
            void dot(float *a, float *b, float *out) {
                float sum = 0.0;
                #pragma omp parallel for
                for (int i = 0; i < 256; i++) { sum += a[i] * b[i]; }
                out[0] = sum;
            }
            "#,
        );
        match &report.verdict {
            LegalityVerdict::SafeWithClauses(clauses) => {
                assert_eq!(clauses, &vec!["reduction(+:sum)".to_string()]);
            }
            other => panic!("expected SafeWithClauses, got {other:?}"),
        }
        assert!(report.warnings().any(|d| d.rule == "shared-scalar-race"));
    }

    #[test]
    fn declared_reduction_clause_is_accepted() {
        assert_eq!(
            verdict(
                r#"
                void dot(float *a, float *b, float *out) {
                    float sum = 0.0;
                    #pragma omp parallel for reduction(+:sum)
                    for (int i = 0; i < 256; i++) { sum += a[i] * b[i]; }
                    out[0] = sum;
                }
                "#,
            ),
            LegalityVerdict::Safe
        );
    }

    #[test]
    fn mismatched_reduction_op_is_unproven() {
        let report = analyze_source(
            r#"
            void f(float *a, float *out) {
                float sum = 1.0;
                #pragma omp parallel for reduction(*:sum)
                for (int i = 0; i < 64; i++) { sum += a[i]; }
                out[0] = sum;
            }
            "#,
        );
        assert!(report.verdict.is_race());
        assert!(report.errors().any(|d| d.rule == "reduction-unproven"));
    }

    #[test]
    fn loop_index_write_is_rejected() {
        let report = analyze_source(
            r#"
            void f(float *a) {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) { a[i] = 0.0; i = i + 2; }
            }
            "#,
        );
        assert!(report.verdict.is_race());
        assert!(report.errors().any(|d| d.rule == "loop-index-write"));
    }

    #[test]
    fn opaque_call_is_rejected_but_intrinsics_pass() {
        assert!(verdict(
            r#"
            void f(float *a) {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) { a[i] = update(a, i); }
            }
            "#,
        )
        .is_race());
        assert_eq!(
            verdict(
                r#"
                void f(float *a) {
                    #pragma omp parallel for
                    for (int i = 0; i < 64; i++) { a[i] = sqrt(a[i]); }
                }
                "#,
            ),
            LegalityVerdict::Safe
        );
    }

    #[test]
    fn unknown_clause_warns_without_blocking() {
        let report = analyze_source(
            r#"
            void f(float *a) {
                #pragma omp parallel for frobnicate(3)
                for (int i = 0; i < 64; i++) { a[i] = 0.0; }
            }
            "#,
        );
        assert_eq!(report.verdict, LegalityVerdict::Safe);
        assert!(report.warnings().any(|d| d.rule == "unknown-clause"));
    }

    #[test]
    fn indirect_write_is_non_affine() {
        let report = analyze_source(
            r#"
            void f(float *a, int *idx) {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) { a[idx[i]] = 0.0; }
            }
            "#,
        );
        assert!(report.verdict.is_race());
        assert!(report.errors().any(|d| d.rule == "non-affine-subscript"));
    }

    #[test]
    fn tolerances_downgrade_named_rules_only() {
        let src = r#"
            void f(float *a, int *idx) {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) { a[idx[i]] = 0.0; }
            }
        "#;
        let tolerated = analyze_source_tolerant(src, &["non-affine-subscript"]);
        assert_eq!(tolerated.verdict, LegalityVerdict::Safe);
        assert!(tolerated
            .warnings()
            .any(|d| d.rule == "non-affine-subscript"));
        // A different rule id does not absolve the finding.
        let unrelated = analyze_source_tolerant(src, &["loop-carried-dependence"]);
        assert!(unrelated.verdict.is_race());
    }

    #[test]
    fn collapse_over_imperfect_nest_is_non_canonical() {
        let report = analyze_source(
            r#"
            void f(float *a) {
                #pragma omp parallel for collapse(2)
                for (int i = 0; i < 8; i++) {
                    a[i] = 0.0;
                }
            }
            "#,
        );
        assert!(report.verdict.is_race());
        assert!(report.errors().any(|d| d.rule == "non-canonical-loop"));
    }

    #[test]
    fn parse_failure_is_conservative() {
        let report = analyze_source("void f( {{{");
        assert!(report.verdict.is_race());
        assert!(report.errors().any(|d| d.rule == "parse-error"));
    }

    #[test]
    fn write_before_read_temporary_suggests_private() {
        let report = analyze_source(
            r#"
            void f(float *a, float *b) {
                float t = 0.0;
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) { t = b[i] * 2.0; a[i] = t; }
            }
            "#,
        );
        match &report.verdict {
            LegalityVerdict::SafeWithClauses(clauses) => {
                assert_eq!(clauses, &vec!["private(t)".to_string()]);
            }
            other => panic!("expected SafeWithClauses, got {other:?}"),
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = analyze_source(
            "void f(float *a) {\n#pragma omp parallel for\nfor (int i = 1; i < 64; i++) { a[i] = a[i - 1]; }\n}",
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn rule_ids_cover_emitted_rules() {
        // Guard against a rule emitting an id the registry does not declare.
        for rule in default_rules() {
            assert!(RULE_IDS.contains(&rule.id()), "{}", rule.id());
        }
    }
}
