//! Affine forms over normalised loop counters.
//!
//! Subscript expressions are lowered to `constant + Σ coeff·e_i + Σ coeff·s_j`
//! where each `e_i` is the *normalised* (0-based) iteration index of a loop in
//! the surrounding nest and each `s_j` is a loop-invariant symbolic value the
//! analysis cannot fold to a constant (an unknown loop start, a read-only
//! scalar). Counter occurrences are rewritten through `value = start +
//! step·e`, so strided and offset loops land in the same iteration space and
//! the dependence tests in [`crate::deps`] only ever see iteration distances.

use pg_frontend::analysis::ConstEnv;
use pg_frontend::{Ast, AstKind, NodeId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Depth limit for inlining single-assignment body scalars into subscripts
/// (`int row = i * m; a[row + j]`), which also breaks substitution cycles.
const MAX_SUBSTITUTION_DEPTH: u32 = 4;

/// What the analysis knows about one canonical loop counter of a nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterMeta {
    /// Initial counter value when constant.
    pub start: Option<i64>,
    /// Counter step per iteration.
    pub step: i64,
    /// Largest normalised iteration index (`trip_count - 1`), when known.
    pub span: Option<i64>,
    /// True when iterations of this loop run concurrently (the loop is
    /// swallowed by the parallel directive, directly or via `collapse`).
    pub parallel: bool,
}

/// `constant + Σ terms[c]·e_c + Σ symbols[s]·s`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineForm {
    /// Constant part.
    pub constant: i64,
    /// Normalised-counter coefficients (zero coefficients are dropped).
    pub terms: BTreeMap<String, i64>,
    /// Loop-invariant symbolic addends and their coefficients.
    pub symbols: BTreeMap<String, i64>,
}

impl AffineForm {
    /// A pure constant.
    pub fn constant(value: i64) -> Self {
        AffineForm {
            constant: value,
            ..AffineForm::default()
        }
    }

    /// True when the form has no counter terms and no symbols.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty() && self.symbols.is_empty()
    }

    fn add_into(map: &mut BTreeMap<String, i64>, key: &str, coeff: i64) -> Option<()> {
        let slot = map.entry(key.to_string()).or_insert(0);
        *slot = slot.checked_add(coeff)?;
        if *slot == 0 {
            map.remove(key);
        }
        Some(())
    }

    fn checked_add(mut self, other: &AffineForm) -> Option<Self> {
        self.constant = self.constant.checked_add(other.constant)?;
        for (name, coeff) in &other.terms {
            Self::add_into(&mut self.terms, name, *coeff)?;
        }
        for (name, coeff) in &other.symbols {
            Self::add_into(&mut self.symbols, name, *coeff)?;
        }
        Some(self)
    }

    fn checked_scale(mut self, k: i64) -> Option<Self> {
        self.constant = self.constant.checked_mul(k)?;
        if k == 0 {
            self.terms.clear();
            self.symbols.clear();
            return Some(self);
        }
        for coeff in self.terms.values_mut() {
            *coeff = coeff.checked_mul(k)?;
        }
        for coeff in self.symbols.values_mut() {
            *coeff = coeff.checked_mul(k)?;
        }
        Some(self)
    }

    fn checked_sub(self, other: &AffineForm) -> Option<Self> {
        let negated = other.clone().checked_scale(-1)?;
        self.checked_add(&negated)
    }
}

/// Everything subscript lowering needs to know about the enclosing region.
pub struct ExtractCtx<'a> {
    /// The AST the nodes live in.
    pub ast: &'a Ast,
    /// Canonical counters of the loop nest, keyed by source name.
    pub counters: &'a BTreeMap<String, CounterMeta>,
    /// Known integer constants (problem sizes folded in by instantiation).
    pub env: &'a ConstEnv,
    /// Region-local scalars written exactly once — by their declaration
    /// initialiser — mapped to that initialiser expression. Their uses are
    /// inlined so `int src = indices[i]; a[src]` is seen for what it is.
    pub substitutable: &'a HashMap<String, NodeId>,
    /// Scalars never written inside the region (loop-invariant values).
    pub invariant: &'a HashSet<String>,
}

/// Lower an expression to an affine form, or `None` when it is not affine in
/// the nest counters (the dependence pass then assumes the worst).
pub fn extract(ctx: &ExtractCtx<'_>, node: NodeId) -> Option<AffineForm> {
    extract_at(ctx, node, 0)
}

fn extract_at(ctx: &ExtractCtx<'_>, node: NodeId, depth: u32) -> Option<AffineForm> {
    let n = ctx.ast.node(node);
    match n.kind {
        AstKind::IntegerLiteral | AstKind::CharacterLiteral => {
            n.data.int_value.map(AffineForm::constant)
        }
        AstKind::DeclRefExpr => {
            let name = n.data.name.as_deref()?;
            if let Some(meta) = ctx.counters.get(name) {
                // value = start + step·e; an unknown start becomes a symbol
                // that cancels when both sides of a pair use the same loop.
                let mut form = AffineForm::default();
                form.terms.insert(name.to_string(), meta.step);
                match meta.start {
                    Some(start) => form.constant = start,
                    None => {
                        form.symbols.insert(format!("{name}#start"), 1);
                    }
                }
                return Some(form);
            }
            if depth < MAX_SUBSTITUTION_DEPTH {
                if let Some(&init) = ctx.substitutable.get(name) {
                    return extract_at(ctx, init, depth + 1);
                }
            }
            // Only values provably not written inside the region may be
            // folded from the constant environment or kept symbolic: a
            // reassigned scalar's declaration-time constant says nothing
            // about its value at the access.
            if ctx.invariant.contains(name) {
                if let Some(&value) = ctx.env.get(name) {
                    return Some(AffineForm::constant(value));
                }
                let mut form = AffineForm::default();
                form.symbols.insert(name.to_string(), 1);
                return Some(form);
            }
            None
        }
        AstKind::ParenExpr | AstKind::ImplicitCastExpr | AstKind::CStyleCastExpr => {
            let &child = n.children.first()?;
            extract_at(ctx, child, depth)
        }
        AstKind::UnaryOperator => {
            let &child = n.children.first()?;
            let inner = extract_at(ctx, child, depth)?;
            match n.data.opcode.as_deref() {
                Some("-") if !n.data.postfix => inner.checked_scale(-1),
                Some("+") if !n.data.postfix => Some(inner),
                _ => None,
            }
        }
        AstKind::BinaryOperator => {
            let lhs = extract_at(ctx, *n.children.first()?, depth)?;
            let rhs = extract_at(ctx, *n.children.get(1)?, depth)?;
            match n.data.opcode.as_deref() {
                Some("+") => lhs.checked_add(&rhs),
                Some("-") => lhs.checked_sub(&rhs),
                Some("*") => {
                    // Only constant × affine stays affine; symbol × counter
                    // (`i * n` with unknown n) is out of scope and handled
                    // conservatively by the caller.
                    if lhs.is_constant() {
                        rhs.checked_scale(lhs.constant)
                    } else if rhs.is_constant() {
                        lhs.checked_scale(rhs.constant)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_frontend::parse;

    fn lower(src: &str, counters: &[(&str, i64, i64)]) -> Option<AffineForm> {
        // `src` is a full function; the expression under test is the index of
        // the first array subscript.
        let ast = parse(src).unwrap();
        let subscript = ast.find_first(AstKind::ArraySubscriptExpr).unwrap();
        let index = ast.children(subscript)[1];
        let mut metas = BTreeMap::new();
        for (name, start, step) in counters {
            metas.insert(
                name.to_string(),
                CounterMeta {
                    start: Some(*start),
                    step: *step,
                    span: Some(100),
                    parallel: true,
                },
            );
        }
        let env = ConstEnv::new();
        let substitutable = HashMap::new();
        let invariant = HashSet::new();
        let ctx = ExtractCtx {
            ast: &ast,
            counters: &metas,
            env: &env,
            substitutable: &substitutable,
            invariant: &invariant,
        };
        extract(&ctx, index)
    }

    #[test]
    fn flattened_2d_subscript() {
        let form = lower(
            "void f(float *a, int i, int j) { a[i * 64 + j + 1] = 0.0; }",
            &[("i", 0, 1), ("j", 0, 1)],
        )
        .unwrap();
        assert_eq!(form.constant, 1);
        assert_eq!(form.terms.get("i"), Some(&64));
        assert_eq!(form.terms.get("j"), Some(&1));
        assert!(form.symbols.is_empty());
    }

    #[test]
    fn counter_normalisation_folds_start_and_step() {
        // i runs 2, 5, 8, ... -> value = 2 + 3e, so a[i - 2] has coeff 3.
        let form = lower(
            "void f(float *a, int i) { a[i - 2] = 0.0; }",
            &[("i", 2, 3)],
        )
        .unwrap();
        assert_eq!(form.constant, 0);
        assert_eq!(form.terms.get("i"), Some(&3));
    }

    #[test]
    fn symbolic_times_counter_is_rejected() {
        assert!(lower(
            "void f(float *a, int i, int n) { a[i * n] = 0.0; }",
            &[("i", 0, 1)],
        )
        .is_none());
    }

    #[test]
    fn invariant_scalar_becomes_symbol() {
        let ast = parse("void f(float *a, int i, int off) { a[i + off] = 0.0; }").unwrap();
        let subscript = ast.find_first(AstKind::ArraySubscriptExpr).unwrap();
        let index = ast.children(subscript)[1];
        let mut counters = BTreeMap::new();
        counters.insert(
            "i".to_string(),
            CounterMeta {
                start: Some(0),
                step: 1,
                span: Some(7),
                parallel: true,
            },
        );
        let env = ConstEnv::new();
        let substitutable = HashMap::new();
        let invariant: HashSet<String> = ["off".to_string()].into_iter().collect();
        let ctx = ExtractCtx {
            ast: &ast,
            counters: &counters,
            env: &env,
            substitutable: &substitutable,
            invariant: &invariant,
        };
        let form = extract(&ctx, index).unwrap();
        assert_eq!(form.symbols.get("off"), Some(&1));
        assert_eq!(form.terms.get("i"), Some(&1));
    }

    #[test]
    fn substitution_inlines_single_assignment_locals() {
        let ast = parse("void f(float *a, int i) { int row = i * 8; a[row + 3] = 0.0; }").unwrap();
        let subscript = ast.find_first(AstKind::ArraySubscriptExpr).unwrap();
        let index = ast.children(subscript)[1];
        let row_decl = ast.find_first(AstKind::VarDecl).unwrap();
        let row_init = ast.children(row_decl)[0];
        let mut counters = BTreeMap::new();
        counters.insert(
            "i".to_string(),
            CounterMeta {
                start: Some(0),
                step: 1,
                span: Some(7),
                parallel: true,
            },
        );
        let env = ConstEnv::new();
        let substitutable: HashMap<String, NodeId> =
            [("row".to_string(), row_init)].into_iter().collect();
        let invariant = HashSet::new();
        let ctx = ExtractCtx {
            ast: &ast,
            counters: &counters,
            env: &env,
            substitutable: &substitutable,
            invariant: &invariant,
        };
        let form = extract(&ctx, index).unwrap();
        assert_eq!(form.constant, 3);
        assert_eq!(form.terms.get("i"), Some(&8));
    }
}
