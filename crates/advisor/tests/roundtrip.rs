//! Roundtrip pins on the layers a tuner mutates.
//!
//! `pg-tune` explores the variant × launch space by regenerating pragmas and
//! sources; if variant naming or the pragma → AST → source → AST loop ever
//! drifted, the search would silently explore a different space than it
//! reports. Two pins:
//!
//! * `Variant::from_name(v.name()) == Some(v)` for every variant (and junk
//!   names stay rejected) — the names are the wire/report identity of a
//!   tuning result.
//! * `rewrite_to_source` → re-parse → pragma extraction reproduces the exact
//!   clause set the variant asked for, on every catalogue kernel ×
//!   applicable variant × a sweep of launch configurations.

use pg_advisor::{rewrite, LaunchConfig, Variant};
use pg_frontend::omp::MapDirection;
use pg_kernels::{all_kernels, TransferDirection};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn variant_names_roundtrip(idx in 0usize..6, salt in 0u64..1_000_000) {
        let variant = Variant::ALL[idx];
        prop_assert_eq!(Variant::from_name(variant.name()), Some(variant));
        // Perturbed names never resolve: the name space is exact, not fuzzy.
        let junk = format!("{}_{salt}", variant.name());
        prop_assert_eq!(Variant::from_name(&junk), None);
        let upper = variant.name().to_ascii_uppercase();
        if upper != variant.name() {
            prop_assert_eq!(Variant::from_name(&upper), None);
        }
    }
}

/// Build the serial version of a kernel (no pragma), rewrite the variant's
/// pragma onto it through the AST layer, re-parse the printed source, and
/// check the extracted directive carries exactly the clauses the variant
/// describes.
#[test]
fn rewrite_to_source_roundtrips_every_variant_clause_set() {
    let launches = [
        LaunchConfig {
            teams: 40,
            threads: 64,
        },
        LaunchConfig {
            teams: 160,
            threads: 256,
        },
        LaunchConfig {
            teams: 1,
            threads: 22,
        },
    ];
    for kernel in all_kernels() {
        let sizes = kernel.default_sizes();
        let serial = kernel.instantiate(&sizes, "");
        let serial_ast = pg_frontend::parse(&serial)
            .unwrap_or_else(|e| panic!("{}: serial source must parse: {e}", kernel.full_name()));
        for variant in Variant::applicable_variants(&kernel) {
            for launch in launches {
                let pragma = variant.pragma(&kernel, &sizes, launch.teams, launch.threads);
                let pragma_text = pragma
                    .strip_prefix("#pragma omp ")
                    .expect("variant pragmas start with `#pragma omp `");

                let source = rewrite::rewrite_to_source(&serial_ast, pragma_text);
                let reparsed = pg_frontend::parse(&source).unwrap_or_else(|e| {
                    panic!(
                        "{} {}: rewritten source must re-parse: {e}",
                        kernel.full_name(),
                        variant.name()
                    )
                });
                let directive_id = reparsed
                    .preorder()
                    .into_iter()
                    .find(|&id| reparsed.kind(id).is_omp_directive())
                    .unwrap_or_else(|| {
                        panic!(
                            "{} {}: rewritten source lost its directive",
                            kernel.full_name(),
                            variant.name()
                        )
                    });
                let directive = reparsed
                    .node(directive_id)
                    .data
                    .omp
                    .as_ref()
                    .expect("directive nodes carry their parsed pragma");

                // Kind: GPU variants offload, CPU variants fork/join.
                assert_eq!(
                    directive.kind.is_target(),
                    variant.is_gpu(),
                    "{} {}",
                    kernel.full_name(),
                    variant.name()
                );
                // Collapse clause mirrors the variant.
                let expected_depth = if variant.collapses() { 2 } else { 1 };
                assert_eq!(directive.collapse_depth(), expected_depth);
                // Launch clauses survive with their exact values.
                if variant.is_gpu() {
                    assert_eq!(directive.num_teams(), Some(launch.teams));
                    assert_eq!(directive.thread_limit(), Some(launch.threads));
                    assert_eq!(directive.num_threads(), None);
                } else {
                    assert_eq!(directive.num_threads(), Some(launch.threads));
                    assert_eq!(directive.num_teams(), None);
                }
                // Data-transfer clauses: `_mem` variants map exactly the
                // kernel's arrays, in the right directions; others map
                // nothing.
                assert_eq!(directive.has_data_transfer(), variant.has_data_transfer());
                if variant.has_data_transfer() {
                    let mapped = directive.map_items();
                    assert_eq!(
                        mapped.len(),
                        kernel.arrays.len(),
                        "{} {}: every array must be mapped",
                        kernel.full_name(),
                        variant.name()
                    );
                    for array in kernel.arrays {
                        let expected_direction = match array.direction {
                            TransferDirection::ToDevice => MapDirection::To,
                            TransferDirection::FromDevice => MapDirection::From,
                            TransferDirection::Both => MapDirection::ToFrom,
                        };
                        assert!(
                            mapped.iter().any(|(direction, item)| {
                                *direction == expected_direction && item.starts_with(array.name)
                            }),
                            "{} {}: array `{}` lost its {:?} map clause in {mapped:?}",
                            kernel.full_name(),
                            variant.name(),
                            array.name,
                            expected_direction
                        );
                    }
                }
            }
        }
    }
}
