//! The advisor's pragma rewriter against generated programs: for any
//! program the structured generator emits, `rewrite_to_source` must
//! produce source that re-parses, carries exactly the requested directive,
//! and preserves the non-OpenMP structure of the original.

use pg_advisor::rewrite::rewrite_to_source;
use pg_frontend::testing::generate_program;
use pg_frontend::{parse, AstKind};

const NON_OMP_KINDS: [AstKind; 7] = [
    AstKind::FunctionDecl,
    AstKind::VarDecl,
    AstKind::ForStmt,
    AstKind::WhileStmt,
    AstKind::IfStmt,
    AstKind::BinaryOperator,
    AstKind::ArraySubscriptExpr,
];

fn fuzz_iters() -> u64 {
    std::env::var("PARAGRAPH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
        .min(2000)
}

#[test]
fn rewritten_generated_programs_reparse_with_structure_preserved() {
    let pragmas = [
        "parallel for",
        "parallel for num_threads(8) schedule(static)",
        "target teams distribute parallel for num_teams(80) thread_limit(128)",
    ];
    for seed in 0..fuzz_iters() {
        let src = generate_program(seed);
        let ast = parse(&src).expect("generated program parses");
        // Only programs with a loop have a rewrite target; the generator
        // emits plenty of them.
        if ast.find_first(AstKind::ForStmt).is_none() {
            continue;
        }
        let pragma = pragmas[(seed % pragmas.len() as u64) as usize];
        let rewritten = rewrite_to_source(&ast, pragma);
        let reparsed = parse(&rewritten).unwrap_or_else(|e| {
            panic!("seed {seed}: rewritten source no longer parses: {e}\n---\n{rewritten}")
        });
        for kind in NON_OMP_KINDS {
            assert_eq!(
                ast.find_all(kind).len(),
                reparsed.find_all(kind).len(),
                "seed {seed}: count of {kind:?} changed across rewrite\n---\n{rewritten}"
            );
        }
        assert!(
            rewritten.contains(&format!("#pragma omp {pragma}")),
            "seed {seed}: requested pragma missing\n---\n{rewritten}"
        );
    }
}
