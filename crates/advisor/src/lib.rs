//! # pg-advisor
//!
//! Substitute for the OpenMP Advisor's Kernel Analysis and Code
//! Transformation modules: it generates the six kernel variants of the paper
//! (`cpu`, `cpu_collapse`, `gpu`, `gpu_collapse`, `gpu_mem`,
//! `gpu_collapse_mem`), sweeps problem sizes and launch configurations to
//! build the dataset, and can rewrite OpenMP pragmas on already-parsed
//! kernels.
//!
//! ```
//! use pg_advisor::{Variant, LaunchConfig, instantiate};
//! use pg_kernels::find_kernel;
//!
//! let mm = find_kernel("MM/matmul").unwrap();
//! let inst = instantiate(&mm, Variant::GpuMem, &mm.default_sizes(),
//!                        LaunchConfig { teams: 80, threads: 128 });
//! assert!(inst.source.contains("map(to:"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gate;
pub mod generator;
pub mod launch;
pub mod rewrite;
pub mod variant;

pub use gate::{assess_instance, gate_instances, repair_instance, GateOutcome, PrunedVariant};
pub use generator::{
    generate_for_kernel, generate_instances, instantiate, GeneratorConfig, KernelInstance,
};
pub use launch::{LaunchConfig, ParallelismBudget};
pub use variant::{map_clauses, Variant};
