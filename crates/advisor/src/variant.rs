//! The six kernel transformations of the paper (Section IV-A1):
//! `cpu`, `cpu_collapse`, `gpu`, `gpu_collapse`, `gpu_mem`, `gpu_collapse_mem`.

use pg_kernels::{KernelTemplate, TransferDirection};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One of the six code-transformation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// CPU parallel kernel using `omp parallel for`.
    Cpu,
    /// CPU parallel kernel with `collapse(2)` on a nested collapsible loop.
    CpuCollapse,
    /// GPU kernel using the combined
    /// `omp target teams distribute parallel for` directive, data assumed
    /// resident on the GPU.
    Gpu,
    /// GPU kernel with `collapse(2)`, data assumed resident on the GPU.
    GpuCollapse,
    /// Same as [`Variant::Gpu`] but with explicit host↔device data transfer.
    GpuMem,
    /// Same as [`Variant::GpuCollapse`] but with explicit data transfer.
    GpuCollapseMem,
}

impl Variant {
    /// All six variants in the paper's order.
    pub const ALL: [Variant; 6] = [
        Variant::Cpu,
        Variant::CpuCollapse,
        Variant::Gpu,
        Variant::GpuCollapse,
        Variant::GpuMem,
        Variant::GpuCollapseMem,
    ];

    /// Paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Cpu => "cpu",
            Variant::CpuCollapse => "cpu_collapse",
            Variant::Gpu => "gpu",
            Variant::GpuCollapse => "gpu_collapse",
            Variant::GpuMem => "gpu_mem",
            Variant::GpuCollapseMem => "gpu_collapse_mem",
        }
    }

    /// Parse a variant from its paper name.
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::ALL.iter().copied().find(|v| v.name() == name)
    }

    /// True for variants that offload to the GPU.
    pub fn is_gpu(self) -> bool {
        !matches!(self, Variant::Cpu | Variant::CpuCollapse)
    }

    /// True for variants that collapse the loop nest.
    pub fn collapses(self) -> bool {
        matches!(
            self,
            Variant::CpuCollapse | Variant::GpuCollapse | Variant::GpuCollapseMem
        )
    }

    /// True for variants that include explicit host↔device data transfer.
    pub fn has_data_transfer(self) -> bool {
        matches!(self, Variant::GpuMem | Variant::GpuCollapseMem)
    }

    /// Whether this variant can legally be generated for a kernel: collapse
    /// variants require a collapsible loop nest.
    pub fn applicable_to(self, kernel: &KernelTemplate) -> bool {
        !self.collapses() || kernel.collapsible
    }

    /// Variants applicable to a kernel.
    pub fn applicable_variants(kernel: &KernelTemplate) -> Vec<Variant> {
        Variant::ALL
            .iter()
            .copied()
            .filter(|v| v.applicable_to(kernel))
            .collect()
    }

    /// Build the OpenMP pragma line for this variant of `kernel` at the given
    /// problem sizes and launch configuration.
    pub fn pragma(
        self,
        kernel: &KernelTemplate,
        sizes: &HashMap<String, i64>,
        teams: u64,
        threads: u64,
    ) -> String {
        let mut clauses: Vec<String> = Vec::new();
        if self.collapses() {
            clauses.push("collapse(2)".to_string());
        }
        if self.is_gpu() {
            clauses.push(format!("num_teams({teams})"));
            clauses.push(format!("thread_limit({threads})"));
        } else {
            clauses.push(format!("num_threads({threads})"));
            clauses.push("schedule(static)".to_string());
        }
        if self.has_data_transfer() {
            clauses.extend(map_clauses(kernel, sizes));
        }
        let head = if self.is_gpu() {
            "#pragma omp target teams distribute parallel for"
        } else {
            "#pragma omp parallel for"
        };
        if clauses.is_empty() {
            head.to_string()
        } else {
            format!("{head} {}", clauses.join(" "))
        }
    }
}

/// Build the `map` clauses describing the kernel's data transfers.
pub fn map_clauses(kernel: &KernelTemplate, sizes: &HashMap<String, i64>) -> Vec<String> {
    let mut to_items = Vec::new();
    let mut from_items = Vec::new();
    let mut tofrom_items = Vec::new();
    for array in kernel.arrays {
        let section = format!("{}[0:{}]", array.name, array.extent.spelling(sizes));
        match array.direction {
            TransferDirection::ToDevice => to_items.push(section),
            TransferDirection::FromDevice => from_items.push(section),
            TransferDirection::Both => tofrom_items.push(section),
        }
    }
    let mut clauses = Vec::new();
    if !to_items.is_empty() {
        clauses.push(format!("map(to: {})", to_items.join(", ")));
    }
    if !from_items.is_empty() {
        clauses.push(format!("map(from: {})", from_items.join(", ")));
    }
    if !tofrom_items.is_empty() {
        clauses.push(format!("map(tofrom: {})", tofrom_items.join(", ")));
    }
    clauses
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_kernels::find_kernel;

    #[test]
    fn six_variants_with_paper_names() {
        assert_eq!(Variant::ALL.len(), 6);
        let names: Vec<&str> = Variant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec![
                "cpu",
                "cpu_collapse",
                "gpu",
                "gpu_collapse",
                "gpu_mem",
                "gpu_collapse_mem"
            ]
        );
        for v in Variant::ALL {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        assert_eq!(Variant::from_name("fpga"), None);
    }

    #[test]
    fn variant_classification() {
        assert!(!Variant::Cpu.is_gpu());
        assert!(Variant::GpuMem.is_gpu());
        assert!(Variant::CpuCollapse.collapses());
        assert!(!Variant::Gpu.collapses());
        assert!(Variant::GpuCollapseMem.has_data_transfer());
        assert!(!Variant::Gpu.has_data_transfer());
    }

    #[test]
    fn collapse_variants_require_collapsible_kernels() {
        let mm = find_kernel("MM/matmul").unwrap(); // collapsible
        let mv = find_kernel("MV/matvec").unwrap(); // not collapsible
        assert_eq!(Variant::applicable_variants(&mm).len(), 6);
        let mv_variants = Variant::applicable_variants(&mv);
        assert_eq!(mv_variants.len(), 3);
        assert!(mv_variants.iter().all(|v| !v.collapses()));
    }

    #[test]
    fn cpu_pragma_contains_threads_and_schedule() {
        let mm = find_kernel("MM/matmul").unwrap();
        let sizes = mm.default_sizes();
        let p = Variant::Cpu.pragma(&mm, &sizes, 1, 16);
        assert!(p.starts_with("#pragma omp parallel for"));
        assert!(p.contains("num_threads(16)"));
        assert!(p.contains("schedule(static)"));
        assert!(!p.contains("map("));
        assert!(!p.contains("collapse"));
    }

    #[test]
    fn gpu_mem_pragma_contains_map_clauses() {
        let mm = find_kernel("MM/matmul").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), 256i64);
        let p = Variant::GpuCollapseMem.pragma(&mm, &sizes, 120, 128);
        assert!(p.starts_with("#pragma omp target teams distribute parallel for"));
        assert!(p.contains("collapse(2)"));
        assert!(p.contains("num_teams(120)"));
        assert!(p.contains("thread_limit(128)"));
        assert!(p.contains("map(to: a[0:65536], b[0:65536])"));
        assert!(p.contains("map(from: c[0:65536])"));
    }

    #[test]
    fn gpu_variant_without_mem_has_no_map() {
        let mm = find_kernel("MM/matmul").unwrap();
        let sizes = mm.default_sizes();
        let p = Variant::Gpu.pragma(&mm, &sizes, 80, 128);
        assert!(!p.contains("map("));
    }

    #[test]
    fn generated_pragmas_parse_via_frontend() {
        let mm = find_kernel("MM/matmul").unwrap();
        let sizes = mm.default_sizes();
        for variant in Variant::applicable_variants(&mm) {
            let pragma = variant.pragma(&mm, &sizes, 64, 128);
            let src = mm.instantiate(&sizes, &pragma);
            let ast =
                pg_frontend::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", variant.name()));
            let directives = ast
                .preorder()
                .into_iter()
                .filter(|&id| ast.kind(id).is_omp_directive())
                .count();
            assert_eq!(directives, 1);
        }
    }

    #[test]
    fn tofrom_arrays_produce_tofrom_clause() {
        let gs = find_kernel("Gauss Seidel/sweep").unwrap();
        let sizes = gs.default_sizes();
        let clauses = map_clauses(&gs, &sizes);
        assert!(clauses.iter().any(|c| c.starts_with("map(tofrom:")));
    }
}
