//! Legality gate over generated variants.
//!
//! Every variant the generator proposes can be assessed against the static
//! analysis in [`pg_analyze`] before it is ranked or served: variants whose
//! verdict is [`LegalityVerdict::Race`] are pruned, variants that would be
//! safe with extra data-sharing clauses pass through unchanged (clause
//! repair is opt-in via [`repair_instance`], so default rankings stay
//! bit-identical to the ungated engine).
//!
//! Catalogue kernels are assessed under the documented per-kernel tolerances
//! ([`pg_analyze::catalogue_tolerances`]); arbitrary user sources get the
//! full conservative treatment.

use crate::generator::KernelInstance;
use pg_analyze::{analyze_source_tolerant, catalogue_tolerances, AnalysisReport, LegalityVerdict};
use serde::{Deserialize, Serialize};

/// A variant pruned by the gate, with the diagnostic that killed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedVariant {
    /// Label of the pruned variant (e.g. `gpu_collapse`).
    pub variant: String,
    /// The race reason from the analysis verdict.
    pub reason: String,
}

/// Result of gating a batch of instances.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Instances whose verdict was `Safe` or `SafeWithClauses`, paired with
    /// their analysis reports, in input order.
    pub admitted: Vec<(KernelInstance, AnalysisReport)>,
    /// Variants rejected as races.
    pub pruned: Vec<PrunedVariant>,
}

/// Analyse one instance's source under the catalogue tolerances for its
/// kernel. Instances of unknown (non-catalogue) kernels are analysed with no
/// tolerances.
pub fn assess_instance(instance: &KernelInstance) -> AnalysisReport {
    let full_name = format!("{}/{}", instance.application, instance.kernel);
    analyze_source_tolerant(&instance.source, catalogue_tolerances(&full_name))
}

/// Gate a batch of instances: admit safe ones, prune provable races.
pub fn gate_instances(instances: Vec<KernelInstance>) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for instance in instances {
        let report = assess_instance(&instance);
        match &report.verdict {
            LegalityVerdict::Race(reason) => outcome.pruned.push(PrunedVariant {
                variant: instance.variant.name().to_string(),
                reason: reason.clone(),
            }),
            _ => outcome.admitted.push((instance, report)),
        }
    }
    outcome
}

/// Opt-in clause repair: when the verdict is
/// [`LegalityVerdict::SafeWithClauses`], append the suggested clauses to the
/// instance's OpenMP pragma and return the repaired instance. Returns `None`
/// when there is nothing to repair (already safe, racy, or the source has no
/// pragma line to extend).
pub fn repair_instance(instance: &KernelInstance) -> Option<KernelInstance> {
    let report = assess_instance(instance);
    let LegalityVerdict::SafeWithClauses(clauses) = &report.verdict else {
        return None;
    };
    let suffix = clauses.join(" ");
    let mut repaired_any = false;
    let repaired: Vec<String> = instance
        .source
        .lines()
        .map(|line| {
            let trimmed = line.trim_start();
            if trimmed.starts_with("#pragma omp") && !trimmed.starts_with("#pragma omp target data")
            {
                repaired_any = true;
                format!("{line} {suffix}")
            } else {
                line.to_string()
            }
        })
        .collect();
    if !repaired_any {
        return None;
    }
    let mut fixed = instance.clone();
    fixed.source = repaired.join("\n");
    if instance.source.ends_with('\n') {
        fixed.source.push('\n');
    }
    Some(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::instantiate;
    use crate::launch::LaunchConfig;
    use crate::variant::Variant;
    use pg_kernels::find_kernel;

    fn mm_instance(variant: Variant) -> KernelInstance {
        let mm = find_kernel("MM/matmul").unwrap();
        instantiate(
            &mm,
            variant,
            &mm.default_sizes(),
            LaunchConfig {
                teams: 80,
                threads: 128,
            },
        )
    }

    #[test]
    fn catalogue_instances_are_admitted() {
        let mm = find_kernel("MM/matmul").unwrap();
        let sizes = mm.default_sizes();
        let launch = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        let instances: Vec<KernelInstance> = Variant::applicable_variants(&mm)
            .into_iter()
            .map(|v| instantiate(&mm, v, &sizes, launch))
            .collect();
        let count = instances.len();
        let outcome = gate_instances(instances);
        assert_eq!(outcome.admitted.len(), count);
        assert!(outcome.pruned.is_empty());
    }

    #[test]
    fn seeded_race_is_pruned() {
        let mut instance = mm_instance(Variant::Gpu);
        // Mutate the final store to also read the next parallel row: a
        // classic distance-1 loop-carried race on `i`.
        let n = instance.sizes["N"];
        instance.source = instance
            .source
            .replace("= sum;", &format!("= sum + c[(i + 1) * {n} + j];"));
        assert!(
            assess_instance(&instance).verdict.is_race(),
            "mutant must race: {}",
            instance.source
        );
        let outcome = gate_instances(vec![instance]);
        assert!(outcome.admitted.is_empty());
        assert_eq!(outcome.pruned.len(), 1);
        assert_eq!(outcome.pruned[0].variant, "gpu");
        assert!(outcome.pruned[0].reason.contains("loop-carried-dependence"));
    }

    #[test]
    fn repair_appends_suggested_clauses() {
        let mut instance = mm_instance(Variant::Cpu);
        // Swap in a dot-product body whose accumulator lives outside the
        // parallel loop, so the analysis suggests a reduction clause.
        instance.source = "void dot(float *a, float *b, float *out) {\n    \
             float sum = 0.0;\n    \
             #pragma omp parallel for\n    \
             for (int i = 0; i < 256; i++) { sum += a[i] * b[i]; }\n    \
             out[0] = sum;\n}\n"
            .to_string();
        let repaired = repair_instance(&instance).expect("suggestion exists");
        assert!(repaired
            .source
            .contains("#pragma omp parallel for reduction(+:sum)"));
        // The repaired source must itself pass the gate cleanly.
        assert_eq!(assess_instance(&repaired).verdict, LegalityVerdict::Safe);
    }

    #[test]
    fn safe_instance_needs_no_repair() {
        assert!(repair_instance(&mm_instance(Variant::Cpu)).is_none());
    }
}
