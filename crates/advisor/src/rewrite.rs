//! AST-level pragma rewriting.
//!
//! The source-template path in [`crate::generator`] is the main way variants
//! are produced, but the OpenMP Advisor also rewrites existing code. This
//! module mirrors that capability: given an already-parsed kernel, it can
//! replace (or insert) the OpenMP directive wrapping the main loop nest and
//! re-emit source through the frontend's pretty-printer.

use pg_frontend::ast::{Ast, AstKind, NodeData};
use pg_frontend::omp;
use pg_frontend::printer;

/// Replace the directive (if any) guarding the outermost loop of the first
/// function in `ast` with the directive described by `pragma_text`
/// (the text after `#pragma omp`). Returns the rewritten AST.
///
/// If the loop has no directive yet, one is inserted between the loop and its
/// parent.
pub fn rewrite_pragma(ast: &Ast, pragma_text: &str) -> Ast {
    let mut rewritten = ast.clone();
    let directive = omp::parse_pragma(pragma_text);
    let kind = match directive.kind {
        omp::OmpDirectiveKind::ParallelFor => AstKind::OmpParallelForDirective,
        omp::OmpDirectiveKind::TargetTeamsDistributeParallelFor => {
            AstKind::OmpTargetTeamsDistributeParallelForDirective
        }
        omp::OmpDirectiveKind::TargetData => AstKind::OmpTargetDataDirective,
        omp::OmpDirectiveKind::Simd => AstKind::OmpSimdDirective,
        omp::OmpDirectiveKind::Other => AstKind::OmpUnknownDirective,
    };

    // Case 1: there is already a directive — swap its kind and payload.
    if let Some(existing) = rewritten
        .preorder()
        .into_iter()
        .find(|&id| rewritten.kind(id).is_omp_directive())
    {
        let node = rewritten.node_mut(existing);
        node.kind = kind;
        node.data.omp = Some(directive);
        return rewritten;
    }

    // Case 2: no directive — wrap the first top-level loop of the first
    // function body. We rebuild the AST because arena nodes cannot be
    // re-parented in place.
    let Some(for_stmt) = rewritten.find_first(AstKind::ForStmt) else {
        return rewritten;
    };
    let Some(parent) = rewritten.node(for_stmt).parent else {
        return rewritten;
    };

    // Create the directive node, splice it where the loop was, and hang the
    // loop underneath it.
    let directive_node = rewritten.add_node(
        kind,
        NodeData {
            omp: Some(directive),
            ..NodeData::default()
        },
    );
    // Replace the child entry in the parent.
    let position = rewritten
        .node(parent)
        .children
        .iter()
        .position(|&c| c == for_stmt)
        .expect("loop must be a child of its parent");
    rewritten.node_mut(parent).children[position] = directive_node;
    rewritten.node_mut(directive_node).parent = Some(parent);
    rewritten.node_mut(for_stmt).parent = Some(directive_node);
    rewritten.node_mut(directive_node).children.push(for_stmt);
    rewritten
}

/// Remove every OpenMP directive, yielding the serial version of the kernel.
/// Directive nodes are replaced by their associated statement.
pub fn strip_pragmas(ast: &Ast) -> Ast {
    let mut stripped = ast.clone();
    let directives: Vec<_> = stripped
        .preorder()
        .into_iter()
        .filter(|&id| stripped.kind(id).is_omp_directive())
        .collect();
    for directive in directives {
        let Some(parent) = stripped.node(directive).parent else {
            continue;
        };
        let children = stripped.node(directive).children.clone();
        let Some(&stmt) = children.first() else {
            continue;
        };
        let position = stripped
            .node(parent)
            .children
            .iter()
            .position(|&c| c == directive)
            .expect("directive must be a child of its parent");
        stripped.node_mut(parent).children[position] = stmt;
        stripped.node_mut(stmt).parent = Some(parent);
        // Detach the directive node (it stays in the arena but unreachable).
        stripped.node_mut(directive).children.clear();
        stripped.node_mut(directive).parent = None;
    }
    stripped
}

/// Rewrite the pragma of a kernel and return the regenerated C source.
pub fn rewrite_to_source(ast: &Ast, pragma_text: &str) -> String {
    printer::print(&rewrite_pragma(ast, pragma_text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_frontend::parse;

    const CPU_KERNEL: &str = r#"
        void axpy(float *x, float *y) {
            #pragma omp parallel for
            for (int i = 0; i < 1024; i++) {
                y[i] = y[i] + 2.0 * x[i];
            }
        }
    "#;

    const SERIAL_KERNEL: &str = r#"
        void axpy(float *x, float *y) {
            for (int i = 0; i < 1024; i++) {
                y[i] = y[i] + 2.0 * x[i];
            }
        }
    "#;

    #[test]
    fn rewrites_existing_directive_to_gpu_offload() {
        let ast = parse(CPU_KERNEL).unwrap();
        let rewritten = rewrite_pragma(
            &ast,
            "target teams distribute parallel for num_teams(80) thread_limit(128)",
        );
        assert!(rewritten
            .find_first(AstKind::OmpTargetTeamsDistributeParallelForDirective)
            .is_some());
        assert!(rewritten
            .find_first(AstKind::OmpParallelForDirective)
            .is_none());
        let src = printer::print(&rewritten);
        assert!(src.contains("target teams distribute parallel for"));
        assert!(src.contains("num_teams(80)"));
        // The rewritten source must still parse.
        parse(&src).unwrap();
    }

    #[test]
    fn inserts_directive_when_kernel_is_serial() {
        let ast = parse(SERIAL_KERNEL).unwrap();
        assert!(ast.find_first(AstKind::OmpParallelForDirective).is_none());
        let rewritten = rewrite_pragma(&ast, "parallel for num_threads(8)");
        rewritten.validate().unwrap();
        let directive = rewritten
            .find_first(AstKind::OmpParallelForDirective)
            .unwrap();
        // The loop is now the directive's child.
        let children = rewritten.children(directive);
        assert_eq!(children.len(), 1);
        assert_eq!(rewritten.kind(children[0]), AstKind::ForStmt);
        let src = printer::print(&rewritten);
        assert!(src.contains("#pragma omp parallel for num_threads(8)"));
        parse(&src).unwrap();
    }

    #[test]
    fn strip_pragmas_produces_serial_code() {
        let ast = parse(CPU_KERNEL).unwrap();
        let stripped = strip_pragmas(&ast);
        assert!(stripped
            .preorder()
            .into_iter()
            .all(|id| !stripped.kind(id).is_omp_directive()));
        let src = printer::print(&stripped);
        assert!(!src.contains("#pragma"));
        assert!(src.contains("for (int i = 0;"));
        parse(&src).unwrap();
    }

    #[test]
    fn rewrite_to_source_round_trips_through_the_parser() {
        let ast = parse(SERIAL_KERNEL).unwrap();
        let src = rewrite_to_source(&ast, "target teams distribute parallel for collapse(2)");
        let reparsed = parse(&src).unwrap();
        let directive = reparsed
            .find_first(AstKind::OmpTargetTeamsDistributeParallelForDirective)
            .unwrap();
        let omp = reparsed.node(directive).data.omp.as_ref().unwrap();
        assert_eq!(omp.collapse_depth(), 2);
    }
}
