//! Launch configurations (levels of parallelism).
//!
//! The paper creates additional data points per kernel variant by varying the
//! number of teams and threads used to execute it. CPU variants sweep the
//! thread count up to the socket's core count; GPU variants sweep teams and
//! the per-team thread limit.

use serde::{Deserialize, Serialize};

/// One launch configuration: the `(teams, threads)` side features of the
/// ParaGraph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of teams (1 for CPU execution).
    pub teams: u64,
    /// Threads per team (CPU: total OpenMP threads).
    pub threads: u64,
}

impl LaunchConfig {
    /// Total amount of parallelism.
    pub fn total_parallelism(&self) -> u64 {
        self.teams.max(1) * self.threads.max(1)
    }
}

/// Parallelism budget of the machine the dataset is generated for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismBudget {
    /// Thread-count sweep used for CPU variants.
    pub cpu_threads: Vec<u64>,
    /// Team-count sweep used for GPU variants.
    pub gpu_teams: Vec<u64>,
    /// Per-team thread-limit sweep used for GPU variants.
    pub gpu_threads: Vec<u64>,
}

impl Default for ParallelismBudget {
    fn default() -> Self {
        Self {
            cpu_threads: vec![4, 8, 16, 22],
            gpu_teams: vec![40, 80, 160],
            gpu_threads: vec![64, 128, 256],
        }
    }
}

impl ParallelismBudget {
    /// Budget matching a CPU with `cores` hardware cores.
    pub fn for_cpu_cores(cores: u64) -> Self {
        let mut threads = vec![2, 4, 8, 16];
        if !threads.contains(&cores) {
            threads.push(cores);
        }
        threads.retain(|&t| t <= cores.max(2));
        Self {
            cpu_threads: threads,
            ..Self::default()
        }
    }

    /// Budget matching a GPU with `sms` streaming multiprocessors / compute
    /// units.
    pub fn for_gpu(sms: u64) -> Self {
        Self {
            gpu_teams: vec![sms / 2, sms, sms * 2],
            gpu_threads: vec![64, 128, 256],
            ..Self::default()
        }
    }

    /// A copy of this budget with every sweep axis geometrically densified:
    /// each gap between consecutive values is subdivided into `factor`
    /// segments by inserting rounded geometric midpoints. `factor <= 1`
    /// returns the budget unchanged, so existing sweeps (and the datasets
    /// derived from them) are bit-identical when densification is off.
    pub fn densified(&self, factor: usize) -> Self {
        Self {
            cpu_threads: densify_axis(&self.cpu_threads, factor),
            gpu_teams: densify_axis(&self.gpu_teams, factor),
            gpu_threads: densify_axis(&self.gpu_threads, factor),
        }
    }

    /// Launch configurations for CPU variants.
    pub fn cpu_launches(&self) -> Vec<LaunchConfig> {
        self.cpu_threads
            .iter()
            .map(|&threads| LaunchConfig { teams: 1, threads })
            .collect()
    }

    /// Launch configurations for GPU variants (Cartesian product of teams and
    /// thread limits).
    pub fn gpu_launches(&self) -> Vec<LaunchConfig> {
        let mut out = Vec::new();
        for &teams in &self.gpu_teams {
            for &threads in &self.gpu_threads {
                out.push(LaunchConfig { teams, threads });
            }
        }
        out
    }
}

/// Subdivide each gap of a sorted sweep axis into `factor` segments with
/// rounded geometric midpoints (sweeps are geometric progressions, so
/// geometric interpolation keeps the spacing perceptually even). Duplicates
/// introduced by rounding are removed; `factor <= 1` is the identity.
pub fn densify_axis(values: &[u64], factor: usize) -> Vec<u64> {
    if factor <= 1 || values.len() < 2 {
        return values.to_vec();
    }
    let mut out: Vec<u64> = Vec::with_capacity(values.len() * factor);
    for pair in values.windows(2) {
        let (lo, hi) = (pair[0] as f64, pair[1] as f64);
        out.push(pair[0]);
        for step in 1..factor {
            let t = step as f64 / factor as f64;
            let mid = (lo.ln() * (1.0 - t) + hi.ln() * t).exp().round() as u64;
            out.push(mid);
        }
    }
    out.push(*values.last().expect("len >= 2"));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_parallelism_is_product() {
        let l = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        assert_eq!(l.total_parallelism(), 10240);
        let serial = LaunchConfig {
            teams: 0,
            threads: 0,
        };
        assert_eq!(serial.total_parallelism(), 1);
    }

    #[test]
    fn cpu_budget_respects_core_count() {
        let b = ParallelismBudget::for_cpu_cores(22);
        assert!(b.cpu_threads.contains(&22));
        assert!(b.cpu_threads.iter().all(|&t| t <= 22));
        let small = ParallelismBudget::for_cpu_cores(4);
        assert!(small.cpu_threads.iter().all(|&t| t <= 4));
    }

    #[test]
    fn gpu_budget_scales_with_sm_count() {
        let b = ParallelismBudget::for_gpu(80);
        assert_eq!(b.gpu_teams, vec![40, 80, 160]);
        assert_eq!(b.gpu_launches().len(), 9);
    }

    #[test]
    fn densified_axes_interleave_geometric_midpoints() {
        assert_eq!(
            densify_axis(&[64, 128, 256], 2),
            vec![64, 91, 128, 181, 256]
        );
        // factor 1 (and short axes) are the identity.
        assert_eq!(densify_axis(&[64, 128, 256], 1), vec![64, 128, 256]);
        assert_eq!(densify_axis(&[7], 4), vec![7]);
        // The budget as a whole densifies every axis and keeps ordering.
        let b = ParallelismBudget::for_gpu(80).densified(2);
        assert_eq!(b.gpu_teams, vec![40, 57, 80, 113, 160]);
        assert_eq!(b.gpu_launches().len(), 25);
        let same = ParallelismBudget::for_gpu(80).densified(1);
        assert_eq!(same, ParallelismBudget::for_gpu(80));
    }

    #[test]
    fn cpu_launches_have_one_team() {
        let b = ParallelismBudget::default();
        assert!(b.cpu_launches().iter().all(|l| l.teams == 1));
        assert_eq!(b.cpu_launches().len(), b.cpu_threads.len());
    }
}
