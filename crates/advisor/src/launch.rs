//! Launch configurations (levels of parallelism).
//!
//! The paper creates additional data points per kernel variant by varying the
//! number of teams and threads used to execute it. CPU variants sweep the
//! thread count up to the socket's core count; GPU variants sweep teams and
//! the per-team thread limit.

use serde::{Deserialize, Serialize};

/// One launch configuration: the `(teams, threads)` side features of the
/// ParaGraph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of teams (1 for CPU execution).
    pub teams: u64,
    /// Threads per team (CPU: total OpenMP threads).
    pub threads: u64,
}

impl LaunchConfig {
    /// Total amount of parallelism.
    pub fn total_parallelism(&self) -> u64 {
        self.teams.max(1) * self.threads.max(1)
    }
}

/// Parallelism budget of the machine the dataset is generated for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismBudget {
    /// Thread-count sweep used for CPU variants.
    pub cpu_threads: Vec<u64>,
    /// Team-count sweep used for GPU variants.
    pub gpu_teams: Vec<u64>,
    /// Per-team thread-limit sweep used for GPU variants.
    pub gpu_threads: Vec<u64>,
}

impl Default for ParallelismBudget {
    fn default() -> Self {
        Self {
            cpu_threads: vec![4, 8, 16, 22],
            gpu_teams: vec![40, 80, 160],
            gpu_threads: vec![64, 128, 256],
        }
    }
}

impl ParallelismBudget {
    /// Budget matching a CPU with `cores` hardware cores.
    pub fn for_cpu_cores(cores: u64) -> Self {
        let mut threads = vec![2, 4, 8, 16];
        if !threads.contains(&cores) {
            threads.push(cores);
        }
        threads.retain(|&t| t <= cores.max(2));
        Self {
            cpu_threads: threads,
            ..Self::default()
        }
    }

    /// Budget matching a GPU with `sms` streaming multiprocessors / compute
    /// units.
    pub fn for_gpu(sms: u64) -> Self {
        Self {
            gpu_teams: vec![sms / 2, sms, sms * 2],
            gpu_threads: vec![64, 128, 256],
            ..Self::default()
        }
    }

    /// Launch configurations for CPU variants.
    pub fn cpu_launches(&self) -> Vec<LaunchConfig> {
        self.cpu_threads
            .iter()
            .map(|&threads| LaunchConfig { teams: 1, threads })
            .collect()
    }

    /// Launch configurations for GPU variants (Cartesian product of teams and
    /// thread limits).
    pub fn gpu_launches(&self) -> Vec<LaunchConfig> {
        let mut out = Vec::new();
        for &teams in &self.gpu_teams {
            for &threads in &self.gpu_threads {
                out.push(LaunchConfig { teams, threads });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_parallelism_is_product() {
        let l = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        assert_eq!(l.total_parallelism(), 10240);
        let serial = LaunchConfig {
            teams: 0,
            threads: 0,
        };
        assert_eq!(serial.total_parallelism(), 1);
    }

    #[test]
    fn cpu_budget_respects_core_count() {
        let b = ParallelismBudget::for_cpu_cores(22);
        assert!(b.cpu_threads.contains(&22));
        assert!(b.cpu_threads.iter().all(|&t| t <= 22));
        let small = ParallelismBudget::for_cpu_cores(4);
        assert!(small.cpu_threads.iter().all(|&t| t <= 4));
    }

    #[test]
    fn gpu_budget_scales_with_sm_count() {
        let b = ParallelismBudget::for_gpu(80);
        assert_eq!(b.gpu_teams, vec![40, 80, 160]);
        assert_eq!(b.gpu_launches().len(), 9);
    }

    #[test]
    fn cpu_launches_have_one_team() {
        let b = ParallelismBudget::default();
        assert!(b.cpu_launches().iter().all(|l| l.teams == 1));
        assert_eq!(b.cpu_launches().len(), b.cpu_threads.len());
    }
}
