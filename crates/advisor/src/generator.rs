//! Kernel-instance generation: the Code Transformation module of the OpenMP
//! Advisor, reproduced as a source-level variant generator.
//!
//! For every kernel of the Table I catalogue, every applicable variant,
//! every problem size of the kernel's sweep and every launch configuration of
//! the parallelism budget, [`generate_instances`] emits one
//! [`KernelInstance`]: the concrete OpenMP C source plus all the metadata the
//! later pipeline stages (graph construction, runtime simulation, feature
//! extraction) need.

use crate::launch::{LaunchConfig, ParallelismBudget};
use crate::variant::Variant;
use pg_kernels::KernelTemplate;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fully instantiated kernel variant ready to be "compiled and run".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelInstance {
    /// Application name (Table I row).
    pub application: String,
    /// Kernel name within the application.
    pub kernel: String,
    /// Which of the six transformations this is.
    pub variant: Variant,
    /// Concrete problem sizes.
    pub sizes: HashMap<String, i64>,
    /// Launch configuration (teams and threads).
    pub launch: LaunchConfig,
    /// The instantiated OpenMP C source.
    pub source: String,
    /// Bytes transferred host→device when the variant transfers data.
    pub bytes_to_device: u64,
    /// Bytes transferred device→host when the variant transfers data.
    pub bytes_from_device: u64,
}

impl KernelInstance {
    /// Fully qualified name `application/kernel`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.application, self.kernel)
    }

    /// Human-readable identifier including variant and sizes.
    pub fn describe(&self) -> String {
        let mut sizes: Vec<(&String, &i64)> = self.sizes.iter().collect();
        sizes.sort();
        let sizes: Vec<String> = sizes.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!(
            "{}/{} [{}] {} teams={} threads={}",
            self.application,
            self.kernel,
            self.variant.name(),
            sizes.join(","),
            self.launch.teams,
            self.launch.threads
        )
    }
}

/// Controls how large the generated instance set is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Keep every `stride`-th size combination (1 = all).
    pub size_stride: usize,
    /// Keep every `stride`-th launch configuration (1 = all).
    pub launch_stride: usize,
    /// Subdivide each gap of every size sweep into this many segments by
    /// inserting geometric midpoints (1 = the template sweeps as written).
    /// This is how `Full`-scale dataset generation densifies toward the
    /// paper's point counts without touching the kernel catalogue.
    pub size_densify: usize,
    /// Subdivide each gap of every launch-budget axis into this many
    /// segments (1 = the budget as given); see
    /// [`ParallelismBudget::densified`].
    pub launch_densify: usize,
    /// Include CPU variants.
    pub include_cpu: bool,
    /// Include GPU variants.
    pub include_gpu: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            size_stride: 1,
            launch_stride: 1,
            size_densify: 1,
            launch_densify: 1,
            include_cpu: true,
            include_gpu: true,
        }
    }
}

impl GeneratorConfig {
    /// A reduced configuration for fast test/CI runs.
    pub fn fast() -> Self {
        Self {
            size_stride: 2,
            launch_stride: 2,
            ..Self::default()
        }
    }
}

/// Generate one instance for a single (kernel, variant, sizes, launch) tuple.
pub fn instantiate(
    kernel: &KernelTemplate,
    variant: Variant,
    sizes: &HashMap<String, i64>,
    launch: LaunchConfig,
) -> KernelInstance {
    let pragma = variant.pragma(kernel, sizes, launch.teams, launch.threads);
    let source = kernel.instantiate(sizes, &pragma);
    let (to_dev, from_dev) = if variant.has_data_transfer() {
        (
            kernel.bytes_to_device(sizes),
            kernel.bytes_from_device(sizes),
        )
    } else {
        (0, 0)
    };
    KernelInstance {
        application: kernel.application.to_string(),
        kernel: kernel.kernel.to_string(),
        variant,
        sizes: sizes.clone(),
        launch,
        source,
        bytes_to_device: to_dev,
        bytes_from_device: from_dev,
    }
}

/// Cartesian size combinations of a kernel, with each per-parameter sweep
/// densified by `factor` (geometric midpoints, matching
/// [`pg_advisor::launch::densify_axis`](crate::launch::densify_axis)).
/// `factor <= 1` reproduces [`KernelTemplate::size_sweep`] exactly,
/// combination order included.
fn densified_size_combos(kernel: &KernelTemplate, factor: usize) -> Vec<HashMap<String, i64>> {
    if factor <= 1 {
        return kernel.size_sweep();
    }
    let mut combos: Vec<HashMap<String, i64>> = vec![HashMap::new()];
    for param in kernel.sizes {
        let unsigned: Vec<u64> = param.sweep.iter().map(|&v| v.max(0) as u64).collect();
        let sweep = crate::launch::densify_axis(&unsigned, factor);
        let mut next = Vec::with_capacity(combos.len() * sweep.len());
        for combo in &combos {
            for &value in &sweep {
                let mut c = combo.clone();
                c.insert(param.name.to_string(), value as i64);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Generate all instances for one kernel template under a budget.
pub fn generate_for_kernel(
    kernel: &KernelTemplate,
    budget: &ParallelismBudget,
    config: &GeneratorConfig,
) -> Vec<KernelInstance> {
    let mut out = Vec::new();
    let budget = budget.densified(config.launch_densify);
    let size_combos: Vec<HashMap<String, i64>> = densified_size_combos(kernel, config.size_densify)
        .into_iter()
        .step_by(config.size_stride.max(1))
        .collect();
    for variant in Variant::applicable_variants(kernel) {
        if variant.is_gpu() && !config.include_gpu {
            continue;
        }
        if !variant.is_gpu() && !config.include_cpu {
            continue;
        }
        let launches: Vec<LaunchConfig> = if variant.is_gpu() {
            budget.gpu_launches()
        } else {
            budget.cpu_launches()
        }
        .into_iter()
        .step_by(config.launch_stride.max(1))
        .collect();
        for sizes in &size_combos {
            for &launch in &launches {
                out.push(instantiate(kernel, variant, sizes, launch));
            }
        }
    }
    out
}

/// Generate instances for every kernel of the catalogue.
pub fn generate_instances(
    kernels: &[KernelTemplate],
    budget: &ParallelismBudget,
    config: &GeneratorConfig,
) -> Vec<KernelInstance> {
    kernels
        .iter()
        .flat_map(|k| generate_for_kernel(k, budget, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_kernels::{all_kernels, find_kernel};

    #[test]
    fn instance_source_parses_and_contains_the_right_directive() {
        let mm = find_kernel("MM/matmul").unwrap();
        let sizes = mm.default_sizes();
        for variant in Variant::ALL {
            let inst = instantiate(
                &mm,
                variant,
                &sizes,
                LaunchConfig {
                    teams: 80,
                    threads: 128,
                },
            );
            let ast = pg_frontend::parse(&inst.source).unwrap();
            let has_target = ast
                .find_first(pg_frontend::AstKind::OmpTargetTeamsDistributeParallelForDirective)
                .is_some();
            assert_eq!(has_target, variant.is_gpu(), "{}", variant.name());
        }
    }

    #[test]
    fn data_transfer_bytes_only_for_mem_variants() {
        let mm = find_kernel("MM/matmul").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), 128i64);
        let launch = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        let gpu = instantiate(&mm, Variant::Gpu, &sizes, launch);
        assert_eq!(gpu.bytes_to_device, 0);
        assert_eq!(gpu.bytes_from_device, 0);
        let mem = instantiate(&mm, Variant::GpuMem, &sizes, launch);
        assert_eq!(mem.bytes_to_device, 2 * 128 * 128 * 4);
        assert_eq!(mem.bytes_from_device, 128 * 128 * 4);
    }

    #[test]
    fn generate_for_kernel_counts() {
        let mm = find_kernel("MM/matmul").unwrap(); // collapsible: 6 variants
        let budget = ParallelismBudget {
            cpu_threads: vec![4, 8],
            gpu_teams: vec![40, 80],
            gpu_threads: vec![128],
        };
        let config = GeneratorConfig::default();
        let instances = generate_for_kernel(&mm, &budget, &config);
        let n_sizes = mm.size_sweep().len();
        // 2 CPU variants * 2 CPU launches + 4 GPU variants * 2 GPU launches, per size.
        assert_eq!(instances.len(), n_sizes * (2 * 2 + 4 * 2));
    }

    #[test]
    fn full_catalogue_generates_thousands_of_unique_instances() {
        let kernels = all_kernels();
        let budget = ParallelismBudget::default();
        let instances = generate_instances(&kernels, &budget, &GeneratorConfig::fast());
        assert!(
            instances.len() > 1000,
            "expected > 1000 instances, got {}",
            instances.len()
        );
        // Instance descriptions must be unique.
        let mut keys: Vec<String> = instances.iter().map(KernelInstance::describe).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate instances generated");
    }

    #[test]
    fn fast_config_reduces_the_instance_count() {
        let kernels = vec![find_kernel("MM/matmul").unwrap()];
        let budget = ParallelismBudget::default();
        let all = generate_instances(&kernels, &budget, &GeneratorConfig::default());
        let fast = generate_instances(&kernels, &budget, &GeneratorConfig::fast());
        assert!(fast.len() < all.len());
        assert!(!fast.is_empty());
    }

    #[test]
    fn densified_config_multiplies_instance_counts() {
        let kernels = vec![find_kernel("MM/matmul").unwrap()];
        let budget = ParallelismBudget::default();
        let base = generate_instances(&kernels, &budget, &GeneratorConfig::default());
        let dense = generate_instances(
            &kernels,
            &budget,
            &GeneratorConfig {
                size_densify: 2,
                launch_densify: 2,
                ..GeneratorConfig::default()
            },
        );
        assert!(
            dense.len() > 3 * base.len(),
            "densify 2x2 must multiply counts: {} -> {}",
            base.len(),
            dense.len()
        );
        // Factor 1 is the identity, instance for instance.
        let same = generate_instances(
            &kernels,
            &budget,
            &GeneratorConfig {
                size_densify: 1,
                launch_densify: 1,
                ..GeneratorConfig::default()
            },
        );
        assert_eq!(same, base);
        // Densified instances are still unique.
        let mut keys: Vec<String> = dense.iter().map(KernelInstance::describe).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate densified instances");
    }

    #[test]
    fn cpu_only_and_gpu_only_filters() {
        let kernels = vec![find_kernel("MV/matvec").unwrap()];
        let budget = ParallelismBudget::default();
        let cpu_only = generate_instances(
            &kernels,
            &budget,
            &GeneratorConfig {
                include_gpu: false,
                ..GeneratorConfig::default()
            },
        );
        assert!(cpu_only.iter().all(|i| !i.variant.is_gpu()));
        let gpu_only = generate_instances(
            &kernels,
            &budget,
            &GeneratorConfig {
                include_cpu: false,
                ..GeneratorConfig::default()
            },
        );
        assert!(gpu_only.iter().all(|i| i.variant.is_gpu()));
    }

    #[test]
    fn describe_mentions_variant_and_sizes() {
        let mm = find_kernel("MM/matmul").unwrap();
        let inst = instantiate(
            &mm,
            Variant::GpuCollapse,
            &mm.default_sizes(),
            LaunchConfig {
                teams: 80,
                threads: 128,
            },
        );
        let d = inst.describe();
        assert!(d.contains("gpu_collapse"));
        assert!(d.contains("N="));
        assert!(d.contains("teams=80"));
    }
}
