//! In-repo stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal serialization framework that is source-compatible with the
//! subset of serde the ParaGraph crates use: `#[derive(Serialize,
//! Deserialize)]` on structs and enums (unit, tuple and struct variants),
//! plus `serde_json::{to_string, from_str}` over it.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! JSON-like [`Value`] tree: `Serialize` renders a value into a [`Value`],
//! `Deserialize` reads one back. The derive macros live in the sibling
//! `serde_derive` shim crate and generate impls of these traits.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like dynamic value: the intermediate representation every
/// serializable type renders into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Coerce any numeric variant to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Coerce any numeric variant to `i64` (when exactly representable).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Coerce any numeric variant to `u64` (when non-negative and exact).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }
}

/// Error produced when deserialization fails.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Create an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Render into the dynamic value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde bounds such as `for<'de> Deserialize<'de>`; this shim always
/// deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct from the dynamic value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Read one named field of an object value (derive helper).
pub fn field<'de, T: Deserialize<'de>>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Wrap an enum variant payload in serde's externally-tagged form
/// (`{"Variant": payload}`) (derive helper).
pub fn variant_value(name: &str, payload: Value) -> Value {
    Value::Object(vec![(name.to_string(), payload)])
}

/// Expect an array of exactly `len` elements (derive helper for tuple
/// variants and tuple structs).
pub fn as_array(value: &Value, len: usize) -> Result<&[Value], Error> {
    match value {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(Error::msg(format!(
            "expected array of {len} elements, found {}",
            items.len()
        ))),
        _ => Err(Error::msg("expected array")),
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and standard containers.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round trip is lossless.
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64().ok_or_else(|| Error::msg("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = as_array(value, N)?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($n),+].len();
                let items = as_array(value, LEN)?;
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must render to / parse from a plain string.
pub trait MapKey: Sized {
    /// Render the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parse the key back from an object-key string.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::msg("invalid integer map key"))
            }
        }
    )*};
}

impl_map_key_int!(i64, u64, usize, u32, i32);

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort keys so the rendered form is deterministic regardless of the
        // hash map's iteration order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
