//! In-repo stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Numbers round-trip exactly: floats are printed with Rust's shortest
//! round-trippable `Display` form, and the parser keeps integers as integers
//! so `u64`/`i64` values survive without a float detour.

pub use serde::Error;
use serde::Value;

/// Serialize a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(*v, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Display for floats is the shortest string that parses back
        // to the same value, which is exactly what a JSON round trip needs.
        out.push_str(&v.to_string());
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.consume_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.consume_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let mut code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // Non-BMP characters arrive as UTF-16 surrogate
                            // pairs (\ud83d\ude00); combine them.
                            if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits starting at `start`, as a code unit.
    fn hex4(&self, start: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-7", "2.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let emoji: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(emoji, "\u{1F600}");
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83d\u0041""#).is_err());
        // BMP escapes still decode directly.
        let plain: String = from_str(r#""\u00e9""#).unwrap();
        assert_eq!(plain, "\u{e9}");
    }

    #[test]
    fn float_precision_survives() {
        let v = 0.1f64 + 0.2f64;
        let text = to_string(&v).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
