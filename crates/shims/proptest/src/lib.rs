//! In-repo stand-in for `proptest`, covering the surface the ParaGraph test
//! suites use: `Strategy` with `prop_map`/`boxed`, range and tuple
//! strategies, `prop_oneof!`, the `proptest!` test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures are reproducible run to run. Shrinking is not
//! implemented — a failing case reports its inputs via the panic message of
//! the assertion that fired.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Configuration of one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic RNG driving case generation (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: state | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub fn one_of<T>(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

/// Strategy choosing uniformly between alternatives.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.index(self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as u128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest `{}` case {case} failed: {message}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(left == right) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        left, right
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(left == right) {
                    return ::std::result::Result::Err(format!($($fmt)+));
                }
            }
        }
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if left == right {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        left, right
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("unit");
        let strat = (1u32..8, 0u8..4).prop_map(|(a, b)| a as usize + b as usize);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..12).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::deterministic("arms");
        let strat = prop_oneof![
            (0u8..1).prop_map(|_| "a"),
            (0u8..1).prop_map(|_| "b"),
            (0u8..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_working_tests(x in 0u32..100, y in 1u64..=4) {
            prop_assume!(x > 0);
            prop_assert!(x < 100, "x out of range: {x}");
            prop_assert_eq!(y.min(4), y);
            prop_assert_ne!(u64::from(x), 0u64);
        }
    }
}
