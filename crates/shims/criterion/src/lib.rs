//! In-repo stand-in for `criterion`: a small wall-clock micro-benchmark
//! harness with the `criterion_group!` / `criterion_main!` /
//! `Criterion::bench_function` API shape the workspace's benches use.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples of
//! an adaptively chosen iteration batch, and reports min / median / mean
//! per-iteration times to stdout.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver. One instance is threaded through every target of a
/// `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
        };

        // Calibration: find an iteration batch that takes ~2 ms, so timer
        // resolution is irrelevant but samples stay quick.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            bencher.iters_per_sample = iters;
            bencher.samples.clear();
            routine(&mut bencher);
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        // Measurement.
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }

        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        println!(
            "bench {name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            format_time(min),
            format_time(median),
            format_time(mean),
            per_iter.len(),
            bencher.iters_per_sample,
        );
        self
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `iters_per_sample` iterations of `f` as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Group benchmark targets under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 us");
        assert_eq!(format_time(5e-9), "5.0 ns");
    }
}
