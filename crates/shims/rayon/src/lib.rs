//! In-repo stand-in for `rayon`, covering the patterns the ParaGraph
//! workspace uses:
//!
//! * `collection.par_iter().map(f).collect::<Vec<_>>()`
//! * `collection.par_iter().filter_map(f).collect::<Vec<_>>()`
//! * `data.par_chunks_mut(n).zip(other.par_chunks(k)).for_each(f)`
//!
//! Unlike a sequential mock, this shim really fans work out across
//! `std::thread::scope` threads (one contiguous chunk per worker, results
//! stitched back in input order, so everything stays deterministic). A
//! thread-local re-entrancy guard makes nested parallel regions run
//! sequentially instead of spawning threads quadratically — rayon gets the
//! same effect from its fixed-size pool.

use std::cell::Cell;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads for `n_items` of work. Scoped threads are
/// spawned per call (there is no persistent pool), so small batches run
/// sequentially — below the threshold, thread create/join would dominate
/// the work itself.
fn worker_count(n_items: usize) -> usize {
    const MIN_ITEMS_TO_SPAWN: usize = 8;
    const MIN_ITEMS_PER_WORKER: usize = 4;
    if n_items < MIN_ITEMS_TO_SPAWN || IN_WORKER.with(Cell::get) {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n_items / MIN_ITEMS_PER_WORKER).clamp(1, 16)
}

/// Run `f` over every index chunk of `0..n_items` on worker threads and
/// return the per-chunk outputs in chunk order.
fn run_chunked<R, F>(n_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    run_chunked_on(worker_count(n_items), n_items, f)
}

/// [`run_chunked`] with an explicit worker count (separated so chunk-bound
/// arithmetic is testable independently of the host's core count).
fn run_chunked_on<R, F>(workers: usize, n_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if workers <= 1 {
        if n_items == 0 {
            return Vec::new();
        }
        return vec![f(0..n_items)];
    }
    let chunk = n_items.div_ceil(workers);
    std::thread::scope(|scope| {
        // Clamp both bounds: with chunk = ceil(n/workers), trailing workers
        // can start past the end (e.g. 10 items on 8 workers), so they get
        // an empty clamped range instead of an out-of-bounds slice.
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n_items);
                let hi = ((w + 1) * chunk).min(n_items);
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    f(lo..hi)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// par_iter
// ---------------------------------------------------------------------------

/// `&self` parallel iteration, mirroring rayon's trait of the same name.
pub trait IntoParallelRefIterator<T> {
    /// A parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> IntoParallelRefIterator<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&T` items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map every item through `f`, keeping the `Some` results, in parallel.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }
}

/// Collections a parallel pipeline can collect into.
pub trait FromParallelVec<R> {
    /// Build the collection from the in-order result vector.
    fn from_parallel_vec(items: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_parallel_vec(items: Vec<R>) -> Self {
        items
    }
}

/// Pending parallel `map`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let ParMap { items, f } = self;
        let per_chunk = run_chunked(items.len(), |range| {
            items[range].iter().map(&f).collect::<Vec<R>>()
        });
        C::from_parallel_vec(per_chunk.into_iter().flatten().collect())
    }
}

/// Pending parallel `filter_map`.
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParFilterMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Execute the filter-map and collect results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let ParFilterMap { items, f } = self;
        let per_chunk = run_chunked(items.len(), |range| {
            items[range].iter().filter_map(&f).collect::<Vec<R>>()
        });
        C::from_parallel_vec(per_chunk.into_iter().flatten().collect())
    }
}

// ---------------------------------------------------------------------------
// par_chunks / par_chunks_mut
// ---------------------------------------------------------------------------

/// Parallel chunked views of shared slices.
pub trait ParallelSlice<T> {
    /// Split into `size`-element chunks for parallel consumption.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        ParChunks {
            chunks: self.chunks(size.max(1)).collect(),
        }
    }
}

/// Parallel chunked views of mutable slices.
pub trait ParallelSliceMut<T> {
    /// Split into `size`-element mutable chunks for parallel consumption.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            chunks: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// Chunks of a shared slice.
pub struct ParChunks<'a, T> {
    chunks: Vec<&'a [T]>,
}

/// Chunks of a mutable slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send + Sync> ParChunksMut<'a, T> {
    /// Pair mutable chunks with the chunks of another slice.
    pub fn zip<'b, U: Sync>(self, other: ParChunks<'b, U>) -> ParZipChunks<'a, 'b, T, U> {
        ParZipChunks {
            pairs: self.chunks.into_iter().zip(other.chunks).collect(),
        }
    }

    /// Pair every mutable chunk with its index, mirroring rayon's
    /// `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParEnumerateChunksMut<'a, T> {
        ParEnumerateChunksMut {
            chunks: self.chunks.into_iter().enumerate().collect(),
        }
    }
}

/// Index-tagged mutable chunks.
pub struct ParEnumerateChunksMut<'a, T> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<T: Send + Sync> ParEnumerateChunksMut<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair across workers.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let mut chunks = self.chunks;
        let workers = worker_count(chunks.len());
        if workers <= 1 {
            for (i, c) in chunks {
                f((i, c));
            }
            return;
        }
        let chunk = chunks.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            while !chunks.is_empty() {
                let batch: Vec<_> = chunks.drain(..chunk.min(chunks.len())).collect();
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    for (i, c) in batch {
                        f((i, c));
                    }
                });
            }
        });
    }
}

/// Zipped (mutable chunk, shared chunk) pairs.
pub struct ParZipChunks<'a, 'b, T, U> {
    pairs: Vec<(&'a mut [T], &'b [U])>,
}

impl<'a, 'b, T: Send + Sync, U: Sync> ParZipChunks<'a, 'b, T, U> {
    /// Apply `f` to every pair, fanning the pairs out across workers.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], &[U])) + Sync,
    {
        let mut pairs = self.pairs;
        let workers = worker_count(pairs.len());
        if workers <= 1 {
            for (a, b) in pairs {
                f((a, b));
            }
            return;
        }
        let chunk = pairs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            while !pairs.is_empty() {
                let batch: Vec<_> = pairs.drain(..chunk.min(pairs.len())).collect();
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    for (a, b) in batch {
                        f((a, b));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_filter_map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input
            .par_iter()
            .filter_map(|&x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(out, (0..1000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn zipped_chunks_see_matched_pairs() {
        let mut out = vec![0i64; 64];
        let src: Vec<i64> = (0..32).collect();
        out.par_chunks_mut(4)
            .zip(src.par_chunks(2))
            .for_each(|(o, s)| {
                for v in o.iter_mut() {
                    *v = s.iter().sum();
                }
            });
        assert_eq!(out[0], 1);
        assert_eq!(out[4], 2 + 3);
        assert_eq!(out[60], 30 + 31);
    }

    #[test]
    fn enumerated_chunks_see_their_own_index() {
        let mut out = vec![0usize; 120];
        out.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i;
            }
        });
        for (j, &v) in out.iter().enumerate() {
            assert_eq!(v, j / 3);
        }
    }

    #[test]
    fn chunk_bounds_hold_when_workers_exceed_even_splits() {
        // 10 items on 8 workers: ceil(10/8)=2 per chunk, so workers 5..8
        // start at or past the end — their ranges must clamp, not panic.
        for (workers, n_items) in [(8, 10), (4, 5), (16, 3), (3, 7), (7, 49)] {
            let items: Vec<usize> = (0..n_items).collect();
            let out: Vec<usize> = crate::run_chunked_on(workers, n_items, |range| {
                items[range].iter().map(|&x| x * 2).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            assert_eq!(
                out,
                (0..n_items).map(|x| x * 2).collect::<Vec<_>>(),
                "workers={workers} n_items={n_items}"
            );
        }
    }

    #[test]
    fn nested_parallelism_does_not_explode() {
        let input: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                let inner: Vec<usize> = input.par_iter().map(|&y| x + y).collect();
                inner.len()
            })
            .collect();
        assert!(out.iter().all(|&n| n == 64));
    }
}
