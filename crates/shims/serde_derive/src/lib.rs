//! Derive macros for the in-repo serde shim.
//!
//! Implemented without `syn`/`quote` (the build environment has no crates.io
//! access): a small hand-rolled parser walks the `proc_macro::TokenStream` of
//! the item, extracts the shape (named-field struct, tuple struct, or enum
//! with unit/tuple/struct variants), and the generated impl is assembled as a
//! source string and re-parsed into a token stream.
//!
//! Supported surface: non-generic structs and enums, no `#[serde(...)]`
//! attributes. Enums use serde's externally-tagged representation
//! (`"Variant"`, `{"Variant": payload}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<VariantShape>,
    },
}

#[derive(Debug)]
enum VariantShape {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments arrive in this form too).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2;
            }
            // `pub`, optionally followed by `(crate)` / `(super)` / ...
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` named fields, tracking `<...>` depth so commas
/// inside generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:`, then consume the type until a top-level `,`.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0usize;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant payload.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<VariantShape> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(vname, arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(vname, fields)
            }
            _ => VariantShape::Unit(vname),
        };
        variants.push(shape);
        // Skip an optional explicit discriminant, then the separating comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "pairs.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut pairs: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(pairs)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    VariantShape::Unit(vn) => format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    ),
                    VariantShape::Tuple(vn, 1) => format!(
                        "{name}::{vn}(x0) => ::serde::variant_value(\"{vn}\", ::serde::Serialize::to_value(x0)),\n"
                    ),
                    VariantShape::Tuple(vn, arity) => {
                        let binders = (0..*arity)
                            .map(|i| format!("x{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*arity)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{vn}({binders}) => ::serde::variant_value(\"{vn}\", ::serde::Value::Array(vec![{items}])),\n"
                        )
                    }
                    VariantShape::Struct(vn, fields) => {
                        let binders = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "pairs.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binders} }} => {{\n\
                                 let mut pairs: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::variant_value(\"{vn}\", ::serde::Value::Object(pairs))\n\
                             }}\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?,\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let inits = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let items = ::serde::as_array(value, {arity})?;\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    VariantShape::Unit(vn) => Some(format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    _ => None,
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    VariantShape::Unit(_) => None,
                    VariantShape::Tuple(vn, 1) => Some(format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantShape::Tuple(vn, arity) => {
                        let inits = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        Some(format!(
                            "\"{vn}\" => {{\n\
                                 let items = ::serde::as_array(payload, {arity})?;\n\
                                 return ::std::result::Result::Ok({name}::{vn}({inits}));\n\
                             }}\n"
                        ))
                    }
                    VariantShape::Struct(vn, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(payload, \"{f}\")?,\n"))
                            .collect();
                        Some(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}),\n"
                        ))
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Str(tag) = value {{\n\
                             match tag.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                         }}\n\
                         if let ::serde::Value::Object(pairs) = value {{\n\
                             if pairs.len() == 1 {{\n\
                                 let (tag, payload) = &pairs[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n{data_arms}_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::Error::msg(concat!(\"invalid \", stringify!({name}), \" value\")))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
