//! Sequence helpers (`SliceRandom`).

use crate::Rng;

/// Randomized operations on slices.
pub trait SliceRandom {
    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        SliceRandom::shuffle(&mut a[..], &mut StdRng::seed_from_u64(9));
        SliceRandom::shuffle(&mut b[..], &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
