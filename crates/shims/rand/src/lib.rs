//! In-repo stand-in for the `rand` crate, covering the surface the ParaGraph
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over float and
//! integer ranges, `seq::SliceRandom::shuffle`, and
//! `distributions::{Distribution, Uniform}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the workspace's reproducibility guarantees
//! rely on (nothing depends on matching upstream rand's exact streams).

pub mod distributions;
pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing randomness interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(-1.0..1.0)` or
    /// `rng.gen_range(0..10)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly into values of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&v));
            let w: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
