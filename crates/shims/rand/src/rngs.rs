//! Concrete generators.

use crate::{Rng, SeedableRng};

/// xoshiro256** generator, seeded through SplitMix64. Stands in for rand's
/// `StdRng`: fast, high-quality and fully deterministic per seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors, so nearby seeds produce unrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }
}
