//! Distribution sampling (`Uniform`).

use crate::Rng;

/// Types that can produce samples of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<X> {
    low: X,
    high: X,
}

impl<X: Copy + PartialOrd> Uniform<X> {
    /// Create a uniform distribution over `[low, high)`.
    pub fn new(low: X, high: X) -> Self {
        assert!(low < high, "Uniform::new called with an empty range");
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + rng.next_f64() * (self.high - self.low)
    }
}

impl Distribution<f32> for Uniform<f32> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        self.low + (rng.next_f64() as f32) * (self.high - self.low)
    }
}
