//! The micro-batching scheduler: concurrent `/advise` requests coalesce
//! into one [`Engine::advise_many`] call.
//!
//! Submission is asynchronous: [`MicroBatcher::submit`] enqueues a request
//! together with a *responder* callback and returns immediately — the
//! scheduler thread invokes the responder with the outcome after the batch
//! executes. This is what decouples coalesced-batch size from thread
//! count: the event-driven server's handful of workers can have hundreds
//! of requests pending in one batch, because no thread blocks per request.
//! (The synchronous [`MicroBatcher::advise`] wrapper still exists for
//! callers that want to wait in place.) A single scheduler thread drains
//! the queue with an adaptive flush policy:
//!
//! 1. **Backlog**: requests that queued while the previous batch executed
//!    are drained (up to [`BatchConfig::max_batch`]) and flushed
//!    immediately — under sustained load, execution time *is* the
//!    coalescing window and batching costs no extra latency;
//! 2. **Deadline**: a lone request arriving on an idle scheduler is held
//!    for at most [`BatchConfig::max_wait`] in case concurrent company is
//!    already in flight, and flushed the moment any arrives.
//!
//! So the tail latency of an unloaded server is one prediction plus at
//! most `max_wait`, while a loaded one rides the engine's batched
//! execution path at full speed — for the GNN backend, one disjoint-union
//! forward pass per flush instead of one tape per request. Predictions
//! are invariant to batch composition (pinned by `pg-gnn`'s
//! `batched_prediction_is_invariant_to_batch_composition`), so coalescing
//! never changes an answer, only its latency.
//!
//! On shutdown the scheduler drains: queued requests are still flushed
//! (deadline waiving — there is no reason to wait once no more traffic is
//! coming), new submissions are refused, and the thread exits when the
//! queue is empty.

use crate::metrics::ServeMetrics;
use crate::ServeError;
use pg_engine::{AdviseReport, AdviseRequest, Engine};
use pg_obs::{monotonic_us, obs, Span, Stage, TraceHandle};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Flush policy of the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Most requests coalesced into one engine call.
    pub max_batch: usize,
    /// Longest a batch is held open waiting for company.
    pub max_wait: Duration,
    /// Most requests queued but not yet executing; submissions beyond this
    /// are refused with [`ServeError::Overloaded`]. The server's admission
    /// control normally rejects earlier — this is the batcher's own
    /// defensive bound.
    pub queue_depth: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            // Sized for the event-driven server: thousands of keep-alive
            // connections can have requests pending at once, and a deeper
            // cap lets one `predict_batch` absorb them. (The pre-event-loop
            // cap of 64 rarely filled because a blocked thread per request
            // bounded the backlog at the worker count.)
            max_batch: 256,
            max_wait: Duration::from_millis(1),
            queue_depth: 4096,
        }
    }
}

/// Callback invoked (exactly once, on the scheduler thread — or inline on
/// refusal) with the outcome of a submitted request.
pub type Responder = Box<dyn FnOnce(Result<AdviseReport, ServeError>) + Send>;

struct Job {
    request: AdviseRequest,
    responder: Responder,
    /// The request's trace, threaded through to `advise_many_traced` so
    /// engine stages (enumerate / analyze / predict) land in its span tree.
    trace: TraceHandle,
    /// Enqueue timestamp ([`monotonic_us`]); feeds the oldest-waiter gauge.
    enqueued_us: u64,
    /// Open batch-wait measurement: started at submit, finished when the
    /// scheduler collects the job into a batch. Feeds both the `batch_wait`
    /// stage histogram and (for traced requests) the span tree.
    wait_span: Option<Span<'static>>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on submit and on shutdown.
    arrived: Condvar,
    draining: AtomicBool,
    config: BatchConfig,
    metrics: Arc<ServeMetrics>,
}

/// Handle to the scheduler thread. Dropping it without
/// [`MicroBatcher::shutdown`] also drains (the thread is joined).
pub struct MicroBatcher {
    shared: Arc<Shared>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MicroBatcher {
    /// Start the scheduler thread over a shared engine.
    pub fn start(engine: Arc<Engine>, config: BatchConfig, metrics: Arc<ServeMetrics>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
            metrics,
        });
        shared
            .metrics
            .batch_capacity
            .store(config.max_batch.max(1) as u64, Ordering::Relaxed);
        let worker_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("pg-serve-batcher".into())
            .spawn(move || scheduler_loop(&worker_shared, &engine))
            .expect("spawning the batcher scheduler thread");
        Self {
            shared,
            scheduler: Mutex::new(Some(scheduler)),
        }
    }

    /// Enqueue one request without blocking; `responder` is invoked exactly
    /// once with the outcome — on the scheduler thread after the batch
    /// executes, or inline (with `Overloaded`/`ShuttingDown`) when the
    /// request is refused without queuing. `trace` (the request's trace
    /// handle, or [`TraceHandle::disabled`]) travels with the job so the
    /// engine's per-stage spans nest under the request.
    pub fn submit(&self, request: AdviseRequest, trace: TraceHandle, responder: Responder) {
        let mut queue = self.shared.queue.lock().expect("batcher queue poisoned");
        if self.shared.draining.load(Ordering::SeqCst) {
            drop(queue);
            responder(Err(ServeError::ShuttingDown));
            return;
        }
        if queue.len() >= self.shared.config.queue_depth {
            let in_flight = queue.len();
            drop(queue);
            responder(Err(ServeError::Overloaded {
                in_flight,
                limit: self.shared.config.queue_depth,
            }));
            return;
        }
        let o = obs();
        let enqueued_us = monotonic_us();
        let wait_span = Some(o.span(&trace, Stage::BatchWait, trace.root()));
        queue.push_back(Job {
            request,
            responder,
            trace,
            enqueued_us,
            wait_span,
        });
        if queue.len() == 1 {
            // Queue was empty: this job is now the oldest waiter.
            self.shared
                .metrics
                .batch_oldest_enqueue_us
                .store(enqueued_us + 1, Ordering::Relaxed);
        }
        drop(queue);
        self.shared.arrived.notify_one();
    }

    /// Submit one request and block until its batch executes. Refused
    /// (without queuing) when the batcher is draining or the queue is full.
    pub fn advise(&self, request: AdviseRequest) -> Result<AdviseReport, ServeError> {
        let (reply, result) = mpsc::channel();
        self.submit(
            request,
            TraceHandle::disabled(),
            Box::new(move |outcome| {
                let _ = reply.send(outcome);
            }),
        );
        match result.recv() {
            Ok(outcome) => outcome,
            // The scheduler dropped the responder without invoking it:
            // only possible if it panicked mid-batch.
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Drain and stop: refuse new submissions, flush everything queued,
    /// join the scheduler thread.
    pub fn shutdown(self) {
        self.stop();
    }

    /// Drain and join the scheduler thread. Idempotent; safe to call from
    /// any thread. If invoked *on* the scheduler thread (possible when a
    /// queued responder holds the last reference to the owning structure),
    /// the handle is detached instead of joined — the scheduler is already
    /// on its way out, and a self-join would deadlock.
    pub fn stop(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.arrived.notify_all();
        let handle = self
            .scheduler
            .lock()
            .expect("batcher scheduler handle poisoned")
            .take();
        if let Some(handle) = handle {
            if handle.thread().id() == std::thread::current().id() {
                return;
            }
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.stop();
    }
}

fn scheduler_loop(shared: &Shared, engine: &Engine) {
    loop {
        let mut batch = collect_batch(shared);
        if batch.is_empty() {
            // Only returned empty when draining and the queue is dry.
            return;
        }
        // The wait is over the moment the batch is assembled; the engine
        // stages take over latency attribution from here.
        for job in &mut batch {
            if let Some(span) = job.wait_span.take() {
                span.finish();
            }
        }
        shared.metrics.record_batch(batch.len());
        let requests: Vec<AdviseRequest> = batch.iter().map(|job| job.request.clone()).collect();
        let traces: Vec<TraceHandle> = batch.iter().map(|job| job.trace.clone()).collect();
        let results = engine.advise_many_traced(&requests, &traces);
        for (job, result) in batch.into_iter().zip(results) {
            (job.responder)(result.map_err(ServeError::Engine));
        }
    }
}

/// Block until at least one job arrives (or drain), then assemble a batch.
///
/// Backlog that accumulated while the previous batch executed is the
/// natural coalescing window: it is drained and flushed immediately, with
/// no added latency. The `max_wait` deadline only comes into play for a
/// *lone* request arriving on an idle scheduler — it is held briefly in
/// case concurrent company is in flight, and flushed as soon as any
/// arrives (or the deadline passes). A saturated server therefore batches
/// at full speed, while an unloaded one adds at most `max_wait` to a
/// single request's latency.
fn collect_batch(shared: &Shared) -> Vec<Job> {
    let mut queue = shared.queue.lock().expect("batcher queue poisoned");
    // Re-point the oldest-waiter gauge at whatever still queues (0 when
    // drained empty); called under the queue lock at every exit so the
    // gauge can never dangle on a collected job.
    let sync_oldest = |queue: &VecDeque<Job>| {
        let stamp = queue.front().map_or(0, |job| job.enqueued_us + 1);
        shared
            .metrics
            .batch_oldest_enqueue_us
            .store(stamp, Ordering::Relaxed);
    };
    while queue.is_empty() {
        if shared.draining.load(Ordering::SeqCst) {
            sync_oldest(&queue);
            return Vec::new();
        }
        queue = shared.arrived.wait(queue).expect("batcher queue poisoned");
    }

    let mut batch = Vec::with_capacity(shared.config.max_batch.min(queue.len()));
    let drain_backlog = |queue: &mut VecDeque<Job>, batch: &mut Vec<Job>| {
        while batch.len() < shared.config.max_batch {
            match queue.pop_front() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
    };
    drain_backlog(&mut queue, &mut batch);
    // Backlog already coalesced (or the cap is 1): flush with no hold.
    if batch.len() > 1 || batch.len() >= shared.config.max_batch {
        sync_oldest(&queue);
        return batch;
    }

    // A lone request from an idle queue: hold it for company until the
    // deadline, flushing as soon as any arrives.
    let deadline = Instant::now() + shared.config.max_wait;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            sync_oldest(&queue);
            return batch; // no more traffic is coming
        }
        let now = Instant::now();
        if now >= deadline {
            sync_oldest(&queue);
            return batch;
        }
        let (guard, _timeout) = shared
            .arrived
            .wait_timeout(queue, deadline - now)
            .expect("batcher queue poisoned");
        queue = guard;
        drain_backlog(&mut queue, &mut batch);
        if batch.len() > 1 {
            sync_oldest(&queue);
            return batch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_perfsim::Platform;

    fn test_engine() -> Arc<Engine> {
        Arc::new(Engine::builder().platform(Platform::SummitV100).build())
    }

    fn catalog_request() -> AdviseRequest {
        AdviseRequest::catalog("MM/matmul")
    }

    #[test]
    fn lone_requests_flush_at_the_deadline() {
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = MicroBatcher::start(
            test_engine(),
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(2),
                queue_depth: 16,
            },
            Arc::clone(&metrics),
        );
        let report = batcher.advise(catalog_request()).unwrap();
        assert!(!report.rankings.is_empty());
        let snap = metrics.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batched_requests, 1);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_submissions_coalesce() {
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Arc::new(MicroBatcher::start(
            test_engine(),
            BatchConfig {
                max_batch: 64,
                // Generous window so every thread lands in one batch even
                // under scheduler noise.
                max_wait: Duration::from_millis(200),
                queue_depth: 64,
            },
            Arc::clone(&metrics),
        ));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || batcher.advise(catalog_request()).unwrap())
            })
            .collect();
        let reports: Vec<AdviseReport> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert!(reports.iter().all(|r| !r.rankings.is_empty()));
        let snap = metrics.snapshot();
        assert_eq!(snap.batched_requests, 8);
        assert!(
            snap.coalesced_batches >= 1,
            "8 concurrent requests should coalesce at least once: {snap:?}"
        );
        assert!(snap.max_batch_size > 1);
    }

    #[test]
    fn max_batch_caps_a_flush() {
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Arc::new(MicroBatcher::start(
            test_engine(),
            BatchConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(100),
                queue_depth: 64,
            },
            Arc::clone(&metrics),
        ));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || batcher.advise(catalog_request()).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.batched_requests, 6);
        assert!(snap.max_batch_size <= 2);
        assert!(snap.batches >= 3);
    }

    #[test]
    fn shutdown_drains_queued_work_and_refuses_new() {
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = MicroBatcher::start(test_engine(), BatchConfig::default(), metrics);
        let report = batcher.advise(catalog_request()).unwrap();
        assert!(!report.rankings.is_empty());
        batcher.shutdown();

        let metrics = Arc::new(ServeMetrics::default());
        let batcher = MicroBatcher::start(test_engine(), BatchConfig::default(), metrics);
        batcher.shared.draining.store(true, Ordering::SeqCst);
        assert!(matches!(
            batcher.advise(catalog_request()),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn full_queue_is_refused_as_overload() {
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = MicroBatcher::start(
            test_engine(),
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                queue_depth: 0,
            },
            metrics,
        );
        assert!(matches!(
            batcher.advise(catalog_request()),
            Err(ServeError::Overloaded { .. })
        ));
    }
}
