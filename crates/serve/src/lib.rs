//! # pg-serve
//!
//! The serving tier of the ParaGraph reproduction: a dependency-free
//! (std-only) multi-threaded HTTP/1.1 server that puts a process boundary
//! and a wire format in front of [`pg_engine::Engine`]. This is the
//! paper's deployment story made concrete — a developer POSTs a kernel,
//! the service answers ranked OpenMP variants — and the layer where the
//! repository's batched execution path starts paying off across *clients*
//! rather than within one call.
//!
//! ```text
//!  thousands of keep-alive clients
//! client ──┐
//! client ──┤   epoll event loop        fixed worker pool
//! client ──┼──► (1 thread: accept,  ──► (N threads: route,   ─┐ async
//! client ──┤    incremental parse,      parse JSON)           │ submit
//! client ──┘    write, timeouts)                              ▼
//!                                     micro-batcher (≤ max_batch, ≤ max_wait)
//!                                                 │ one Engine::advise_many
//!                                                 ▼
//!                                  backend predict_batch (GNN: one
//!                                  disjoint-union forward pass per flush)
//! ```
//!
//! Four routes: `POST /advise` and `POST /tune` (the engine's and tuner's
//! own serde types as the wire format), `GET /healthz`, `GET /metrics`
//! (Prometheus text). `/tune` runs a budgeted `pg_tune` search with the
//! shared engine as cost model (it batches internally — one backend call
//! per search generation — so it bypasses the micro-batcher but shares the
//! admission gauge). Admission control bounds in-flight requests across
//! both POST routes (429 + `Retry-After` on overload),
//! and shutdown drains: admitted requests finish, queued batches flush,
//! every thread joins. Pair with `pg_gnn::registry` to hot-load a trained
//! model bundle instead of training in-process — see `examples/serve.rs`.
//!
//! ```no_run
//! use pg_engine::Engine;
//! use pg_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::builder().build());
//! let server = Server::start(engine, ServeConfig::default()).unwrap();
//! println!("listening on http://{}", server.addr());
//! server.shutdown();
//! ```

#![warn(missing_docs)]
// Two exceptions: the no-libc signal shim in `signal` and the raw epoll
// syscall bindings in `poll` — both opt back in locally.
#![deny(unsafe_code)]

pub mod batcher;
pub(crate) mod event;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod server;
pub mod signal;

pub use batcher::{BatchConfig, MicroBatcher};
pub use metrics::{MetricsSnapshot, RuleCount, ServeMetrics, BATCH_SIZE_BUCKETS};
pub use server::{ServeConfig, Server};
pub use signal::{install_termination_handler, termination_requested};

use pg_engine::EngineError;

/// Why the serving tier refused or failed a request (distinct from HTTP
/// parse errors, which never reach the engine).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine processed the request and failed.
    Engine(EngineError),
    /// Admission control or the batcher queue refused the request; retry
    /// after backoff.
    Overloaded {
        /// Requests in flight when the request was refused.
        in_flight: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The server is draining and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(error) => write!(f, "{error}"),
            ServeError::Overloaded { in_flight, limit } => {
                write!(f, "overloaded: {in_flight} in flight, {limit} admitted")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(error) => Some(error),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(error: EngineError) -> Self {
        ServeError::Engine(error)
    }
}
