//! The readiness-driven I/O core: one thread multiplexing every
//! connection over an epoll [`Poller`].
//!
//! Each connection is a small state machine:
//!
//! ```text
//!             readable: feed IncrementalParser
//!   Reading ────────────────────────────────────► InFlight
//!      ▲     (complete request → admission →         │ worker / batcher
//!      │      worker pool; reads pause)              │ responder
//!      │                                             ▼
//!      └──────────────────────────────────────── Writing
//!        response flushed, keep-alive: parse any      (partial writes
//!        pipelined leftovers immediately              resume on EPOLLOUT)
//! ```
//!
//! * **Reading** — interest `EPOLLIN`; socket bytes feed the incremental
//!   parser. A complete request pauses reading (interest none) until its
//!   response is written: back-pressure is the kernel socket buffer, so a
//!   pipelining flood cannot balloon per-connection memory beyond one read.
//! * **InFlight** — the parsed request was dispatched (admission-checked)
//!   to the worker pool; the connection waits. No deadline: the engine
//!   bounds its own work.
//! * **Writing** — interest `EPOLLOUT` until the buffered response drains,
//!   then either close (`Connection: close`, parse error, drain) or back
//!   to Reading — where pipelined bytes already buffered are parsed
//!   without waiting for another readiness event.
//!
//! Timeouts are enforced from the loop, not from worker threads: an *idle*
//! keep-alive connection is closed after `idle_timeout`, and a connection
//! that has started a request (one byte is enough) must complete it within
//! `header_read_timeout` — a slow-loris client dribbling a byte at a time
//! holds only its own connection entry, never a thread, and is cut off on
//! schedule. Writing shares the same progress bound.
//!
//! Shutdown is drain-then-close: the listener is deregistered, idle and
//! mid-read connections close immediately, in-flight requests finish and
//! flush, and the loop exits when the connection table is empty.

use crate::http::{IncrementalParser, ParseError, ParseOutcome, Request, Response};
use crate::poll::{Interest, Poller};
use crate::server::{Shared, WorkItem};
use pg_obs::{obs, Span, Stage, TraceHandle};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Token of the listening socket.
const LISTENER: u64 = 0;
/// Token of the wakeup eventfd.
const WAKER: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN: u64 = 2;

/// Per-read scratch size; also the per-iteration cap on how far a single
/// connection can run ahead of its dispatched request.
const READ_CHUNK: usize = 16 * 1024;

#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// A request was dispatched; reads are paused until its response.
    InFlight,
    /// Flushing a response; `close_after` ends the connection once done.
    Writing { close_after: bool },
}

/// Which timeout the connection's deadline tracks (the deadline is set at
/// state *transitions*, never refreshed per byte — that is what defeats a
/// slow-loris dribble).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    None,
    Idle,
    Progress,
}

struct Conn {
    stream: TcpStream,
    parser: IncrementalParser,
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    deadline: Option<Instant>,
    deadline_kind: DeadlineKind,
    /// Interest currently registered with the poller.
    interest: Interest,
    registered: bool,
    /// The peer closed its write half (read returned 0).
    eof: bool,
    /// Marked for removal at the next finalize.
    dead: bool,
    /// The in-flight request's trace (armed at accept, re-armed per
    /// keep-alive request, committed when its response flushes).
    trace: TraceHandle,
    /// Root span of the trace (index 0; every other span parents on it).
    root_span: Option<Span<'static>>,
    /// Open parse measurement: first byte of a request to its complete
    /// parse.
    parse_span: Option<Span<'static>>,
    /// Open write measurement: response queued to response flushed.
    write_span: Option<Span<'static>>,
    /// When the request was dispatched (or answered inline); closes into
    /// the `request` stage histogram at flush.
    req_started: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, max_body_bytes: usize) -> Self {
        Conn {
            stream,
            parser: IncrementalParser::new(max_body_bytes),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::Reading,
            deadline: None,
            deadline_kind: DeadlineKind::None,
            interest: Interest::NONE,
            registered: false,
            eof: false,
            dead: false,
            trace: TraceHandle::disabled(),
            root_span: None,
            parse_span: None,
            write_span: None,
            req_started: None,
        }
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Start a fresh trace for the next request on this connection. The
    /// root span is pushed first, so `TraceHandle::root()` (span 0) is a
    /// valid parent in every other tier. The root span is trace-only: the
    /// `request` histogram is fed from `req_started` instead, so idle
    /// keep-alive time between requests never pollutes it.
    fn arm_trace(&mut self) {
        let o = obs();
        if !o.enabled() {
            return;
        }
        let trace = o.begin_trace("http");
        self.root_span = Some(o.trace_span(&trace, Stage::Request, None));
        self.trace = trace;
    }

    /// Open the write span when a response is queued (idempotent until the
    /// flush completes).
    fn start_write_span(&mut self) {
        if self.write_span.is_none() && self.trace.active() {
            let o = obs();
            self.write_span = Some(o.span(&self.trace, Stage::Write, self.trace.root()));
        }
    }

    /// A response finished flushing: close the open spans, record the
    /// request latency, and commit the trace (kept or dropped per the
    /// sampling policy).
    fn finish_trace(&mut self) {
        if let Some(span) = self.write_span.take() {
            span.finish();
        }
        if let Some(span) = self.parse_span.take() {
            span.finish();
        }
        if let Some(span) = self.root_span.take() {
            span.finish();
        }
        let o = obs();
        if let Some(started) = self.req_started.take() {
            o.record_stage(Stage::Request, started.elapsed());
        }
        let trace = std::mem::take(&mut self.trace);
        if trace.active() {
            o.commit(trace);
        }
    }

    fn desired_interest(&self) -> Interest {
        match self.state {
            ConnState::Reading => Interest {
                readable: true,
                writable: self.out_pending(),
            },
            ConnState::InFlight => Interest::NONE,
            ConnState::Writing { .. } => Interest::WRITE,
        }
    }

    /// Re-aim the deadline for the connection's current phase.
    fn arm_deadline(&mut self, now: Instant, idle: Duration, progress: Duration) {
        let (kind, timeout) = match self.state {
            ConnState::InFlight => (DeadlineKind::None, None),
            ConnState::Writing { .. } => (DeadlineKind::Progress, Some(progress)),
            ConnState::Reading => {
                if self.parser.mid_request() {
                    (DeadlineKind::Progress, Some(progress))
                } else {
                    (DeadlineKind::Idle, Some(idle))
                }
            }
        };
        if kind != self.deadline_kind {
            self.deadline_kind = kind;
            self.deadline = timeout.map(|t| now + t);
        }
    }
}

pub(crate) struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    work_tx: mpsc::Sender<WorkItem>,
    max_connections: usize,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    drain_started: bool,
}

impl EventLoop {
    pub(crate) fn new(
        shared: Arc<Shared>,
        poller: Poller,
        listener: TcpListener,
        work_tx: mpsc::Sender<WorkItem>,
        max_connections: usize,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        poller.register(raw_fd(&listener), LISTENER, Interest::READ)?;
        poller.register(shared.waker.fd(), WAKER, Interest::READ)?;
        Ok(EventLoop {
            shared,
            poller,
            listener,
            work_tx,
            max_connections,
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            drain_started: false,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events = Vec::with_capacity(256);
        loop {
            if self.shared.draining.load(Ordering::SeqCst) && !self.drain_started {
                self.start_drain();
            }
            if self.drain_started && self.conns.is_empty() {
                return;
            }
            let timeout = self.sweep_deadlines();
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // An unrecoverable poller error would spin; bail out and
                // let shutdown() observe the thread exit.
                return;
            }
            self.shared
                .metrics
                .epoll_wakeups
                .fetch_add(1, Ordering::Relaxed);
            let mut accept_ready = false;
            for event in events.drain(..) {
                match event.token {
                    WAKER => self.shared.waker.drain(),
                    LISTENER => accept_ready = true,
                    token => self.conn_event(token, event.writable),
                }
            }
            self.process_completions();
            if accept_ready && !self.drain_started {
                self.accept_ready();
            }
        }
    }

    /// Close expired connections; return the time until the nearest
    /// surviving deadline (for the poll timeout).
    fn sweep_deadlines(&mut self) -> Option<Duration> {
        let now = Instant::now();
        let mut expired: Vec<u64> = Vec::new();
        let mut nearest: Option<Instant> = None;
        for (&token, conn) in &self.conns {
            if let Some(deadline) = conn.deadline {
                if deadline <= now {
                    expired.push(token);
                } else {
                    nearest = Some(nearest.map_or(deadline, |n: Instant| n.min(deadline)));
                }
            }
        }
        for token in expired {
            self.shared
                .metrics
                .conn_timeouts
                .fetch_add(1, Ordering::Relaxed);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead = true;
            }
            self.finalize(token);
        }
        // Cap the sleep so a drain request never waits on a distant
        // deadline even if a wake is lost.
        let cap = Duration::from_millis(500);
        Some(match nearest {
            Some(deadline) => (deadline - now).min(cap),
            None => cap,
        })
    }

    fn start_drain(&mut self) {
        self.drain_started = true;
        let _ = self.poller.deregister(raw_fd(&self.listener));
        // Idle and mid-read connections close now; in-flight and writing
        // connections finish their response first (and then close — see
        // process_completions / try_write).
        let reading: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading && !c.out_pending())
            .map(|(&t, _)| t)
            .collect();
        for token in reading {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead = true;
            }
            self.finalize(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.max_connections {
                        // Shed before reading a byte: a flood cannot
                        // accumulate sockets, table entries or threads.
                        self.shared
                            .metrics
                            .connections_shed
                            .fetch_add(1, Ordering::Relaxed);
                        let mut payload = Vec::new();
                        let _ = Response::error(429, "connection limit reached")
                            .with_header("Retry-After", "1")
                            .write_to(&mut payload, true);
                        let _ = stream.set_nonblocking(true);
                        let _ = (&stream).write(&payload);
                        continue; // dropped: closed
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let accepted = Instant::now();
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream, self.shared.max_body_bytes);
                    conn.arm_trace();
                    if conn.trace.active() {
                        let o = obs();
                        // Marks the accept event in the span tree; the
                        // histogram gets the measured socket-setup time
                        // (the marker would double-count it).
                        o.trace_span(&conn.trace, Stage::Accept, conn.trace.root())
                            .finish();
                        o.record_stage(Stage::Accept, accepted.elapsed());
                    }
                    conn.arm_deadline(
                        Instant::now(),
                        self.shared.idle_timeout,
                        self.shared.header_read_timeout,
                    );
                    self.shared
                        .metrics
                        .connections_opened
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .metrics
                        .open_connections
                        .fetch_add(1, Ordering::SeqCst);
                    self.conns.insert(token, conn);
                    self.finalize(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient (ECONNABORTED etc.); retry on next readiness
            }
        }
    }

    fn conn_event(&mut self, token: u64, writable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.state {
            ConnState::Reading => {
                Self::do_read(conn, token, &self.shared, &self.work_tx, self.drain_started);
                if writable && !conn.dead && conn.out_pending() {
                    // e.g. a partially-written `100 Continue`
                    Self::try_write(conn);
                }
            }
            ConnState::InFlight => {
                // Only error/hangup readiness can arrive here (interest is
                // none). Probe the socket so a vanished peer does not spin
                // the loop; the connection itself stays until its response
                // comes back from the worker.
                let mut probe = [0u8; 64];
                match conn.stream.read(&mut probe) {
                    Ok(0) | Err(_) => {
                        conn.eof = true;
                        if conn.registered {
                            let _ = self.poller.deregister(raw_fd(&conn.stream));
                            conn.registered = false;
                        }
                        return; // finalize would re-register; stay parked
                    }
                    Ok(n) => conn.parser.feed(&probe[..n]),
                }
            }
            ConnState::Writing { .. } => {
                if Self::try_write(conn) {
                    Self::resume_reading(
                        conn,
                        token,
                        &self.shared,
                        &self.work_tx,
                        self.drain_started,
                    );
                }
            }
        }
        self.finalize(token);
    }

    fn process_completions(&mut self) {
        let completions: Vec<_> = {
            let mut pending = self
                .shared
                .completions
                .lock()
                .expect("completion queue poisoned");
            std::mem::take(&mut *pending)
        };
        for completion in completions {
            let token = completion.token;
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // the connection died while the request ran
            };
            let close = completion.close
                || conn.eof
                || self.shared.draining.load(Ordering::SeqCst)
                || self.drain_started;
            conn.start_write_span();
            let _ = completion.response.write_to(&mut conn.out, close);
            conn.state = ConnState::Writing { close_after: close };
            conn.deadline_kind = DeadlineKind::None; // force re-arm
            conn.arm_deadline(
                Instant::now(),
                self.shared.idle_timeout,
                self.shared.header_read_timeout,
            );
            if Self::try_write(conn) {
                Self::resume_reading(conn, token, &self.shared, &self.work_tx, self.drain_started);
            }
            self.finalize(token);
        }
    }

    /// Drain the socket into the parser, dispatching at most one request
    /// (further pipelined bytes stay buffered until the response is out).
    fn do_read(
        conn: &mut Conn,
        token: u64,
        shared: &Shared,
        work_tx: &mpsc::Sender<WorkItem>,
        draining: bool,
    ) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.parse_span.is_none() && conn.trace.active() {
                        conn.parse_span =
                            Some(obs().span(&conn.trace, Stage::Parse, conn.trace.root()));
                    }
                    conn.parser.feed(&scratch[..n]);
                    Self::advance_parser(conn, token, shared, work_tx, draining);
                    if conn.state != ConnState::Reading || conn.dead {
                        return; // request dispatched or error queued
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.eof && conn.state == ConnState::Reading && !conn.out_pending() {
            // Clean close between requests, or a request truncated
            // mid-read: either way there is nothing left to answer.
            conn.dead = true;
        }
    }

    /// After a response is fully flushed on a keep-alive connection:
    /// re-enter Reading and parse pipelined leftovers immediately.
    fn resume_reading(
        conn: &mut Conn,
        token: u64,
        shared: &Shared,
        work_tx: &mpsc::Sender<WorkItem>,
        draining: bool,
    ) {
        if conn.state != ConnState::Reading || conn.dead {
            return;
        }
        if draining {
            conn.dead = true;
            return;
        }
        Self::advance_parser(conn, token, shared, work_tx, draining);
        if conn.eof && conn.state == ConnState::Reading && !conn.out_pending() {
            conn.dead = true;
        }
    }

    /// Pull complete requests out of the parser: interim `100 Continue`
    /// responses are queued as soon as a head announces the expectation,
    /// and the first complete request is admission-checked and dispatched.
    fn advance_parser(
        conn: &mut Conn,
        token: u64,
        shared: &Shared,
        work_tx: &mpsc::Sender<WorkItem>,
        draining: bool,
    ) {
        debug_assert_eq!(conn.state, ConnState::Reading);
        match conn.parser.next_request() {
            Ok(ParseOutcome::Incomplete) => {
                if conn.parser.take_continue() {
                    conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                    Self::try_write(conn);
                }
            }
            Ok(ParseOutcome::Request(request)) => {
                if let Some(span) = conn.parse_span.take() {
                    span.finish();
                }
                if conn.parser.take_continue() {
                    // The body arrived with the head; the interim response
                    // still precedes the final one, as the blocking parser
                    // always wrote it.
                    conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                }
                Self::dispatch(conn, token, *request, shared, work_tx, draining);
            }
            Ok(ParseOutcome::Close) => {
                if conn.out_pending() {
                    conn.state = ConnState::Writing { close_after: true };
                } else {
                    conn.dead = true;
                }
            }
            Err(error) => {
                if let Some(span) = conn.parse_span.take() {
                    span.finish();
                }
                shared
                    .metrics
                    .http_bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                pg_obs::debug!("rejecting malformed request", error = format!("{error:?}"));
                let response = match error {
                    ParseError::Malformed(detail) => Response::error(400, &detail),
                    ParseError::BodyTooLarge { declared, limit } => {
                        shared
                            .metrics
                            .parse_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        Response::error(
                            413,
                            &format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                        )
                    }
                    // The incremental parser never produces Io errors.
                    ParseError::Io(detail) => Response::error(400, &detail),
                };
                conn.req_started = Some(Instant::now());
                conn.start_write_span();
                let _ = response.write_to(&mut conn.out, true);
                conn.state = ConnState::Writing { close_after: true };
                Self::try_write(conn);
            }
        }
        conn.arm_deadline(
            Instant::now(),
            shared.idle_timeout,
            shared.header_read_timeout,
        );
    }

    /// Admission control + handoff to the worker pool. POST routes hold an
    /// in-flight slot (released when their response is completed); past
    /// `max_inflight` they are shed right here with 429 — no worker time,
    /// no JSON parse, no engine work.
    fn dispatch(
        conn: &mut Conn,
        token: u64,
        request: Request,
        shared: &Shared,
        work_tx: &mpsc::Sender<WorkItem>,
        draining: bool,
    ) {
        shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        conn.req_started = Some(Instant::now());
        let close = !request.keep_alive() || draining;
        let gated =
            request.method == "POST" && matches!(request.path.as_str(), "/advise" | "/tune");
        let mut slot = false;
        if gated {
            let rejected_counter = if request.path == "/tune" {
                shared.metrics.tune_requests.fetch_add(1, Ordering::Relaxed);
                &shared.metrics.tune_rejected
            } else {
                &shared.metrics.advise_rejected
            };
            let admitted = shared.metrics.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            if admitted > shared.max_inflight as u64 {
                shared.metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
                rejected_counter.fetch_add(1, Ordering::Relaxed);
                pg_obs::debug!(
                    "shedding request at admission",
                    path = request.path,
                    in_flight = admitted,
                    limit = shared.max_inflight
                );
                let response = Response::error(
                    429,
                    &format!(
                        "{admitted} requests in flight exceeds the {} admitted",
                        shared.max_inflight
                    ),
                )
                .with_header("Retry-After", "1");
                conn.start_write_span();
                let _ = response.write_to(&mut conn.out, close);
                conn.state = ConnState::Writing { close_after: close };
                Self::try_write(conn);
                return;
            }
            slot = true;
        }
        conn.state = ConnState::InFlight;
        if work_tx
            .send(WorkItem {
                token,
                request,
                slot,
                trace: conn.trace.clone(),
            })
            .is_err()
        {
            // Workers are gone (shutdown race): the connection cannot be
            // answered.
            if slot {
                shared.metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            conn.dead = true;
        }
    }

    /// Flush as much buffered output as the socket accepts. Returns true
    /// when a Writing connection finished its response and re-entered
    /// Reading (the caller should then parse pipelined leftovers).
    fn try_write(conn: &mut Conn) -> bool {
        while conn.out_pending() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return false;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return false;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if let ConnState::Writing { close_after } = conn.state {
            // The response is on the wire: the request's trace is complete.
            conn.finish_trace();
            if close_after {
                conn.dead = true;
                return false;
            }
            conn.state = ConnState::Reading;
            conn.deadline_kind = DeadlineKind::None; // force re-arm by caller
            conn.arm_trace(); // next keep-alive request gets its own trace
            return true;
        }
        false
    }

    /// Apply a connection's fate: remove it if dead, otherwise reconcile
    /// its epoll registration with the interest its state wants.
    fn finalize(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead {
            if conn.registered {
                let _ = self.poller.deregister(raw_fd(&conn.stream));
            }
            self.conns.remove(&token);
            self.shared
                .metrics
                .open_connections
                .fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let desired = conn.desired_interest();
        if !conn.registered {
            if self
                .poller
                .register(raw_fd(&conn.stream), token, desired)
                .is_ok()
            {
                conn.registered = true;
                conn.interest = desired;
            } else {
                conn.dead = true;
                self.conns.remove(&token);
                self.shared
                    .metrics
                    .open_connections
                    .fetch_sub(1, Ordering::SeqCst);
            }
        } else if desired != conn.interest
            && self
                .poller
                .modify(raw_fd(&conn.stream), token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }
}
