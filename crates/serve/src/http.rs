//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The serving tier needs four routes, bodies of modest size, and
//! sequential keep-alive — not a general web framework. Everything else
//! (chunked transfer, multipart, TLS) is out of scope and rejected
//! cleanly. Both parsers enforce hard limits on request-line, header and
//! body sizes so a misbehaving client cannot balloon the server's memory.
//!
//! There are two parsers over the same grammar:
//!
//! * [`read_request`] — the original *blocking* parser over a `BufRead`,
//!   kept as the executable specification: the incremental parser is
//!   pinned byte-for-byte against it (see the `incremental` tests);
//! * [`IncrementalParser`] — the event loop's *non-blocking* state
//!   machine: bytes are [`fed`](IncrementalParser::feed) in whatever
//!   fragments the socket produces, and [`next_request`]
//!   (IncrementalParser::next_request) yields complete requests as they
//!   materialise, tolerating splits at any byte boundary and pipelined
//!   requests sharing one buffer.

use std::io::{BufRead, Write};

/// Upper bound on the request line and on each header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercase (`GET`, `POST`).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0` (the two versions the
    /// parser admits); they default to opposite connection persistence.
    pub http11: bool,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 defaults to close unless the client
    /// sends `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("keep-alive"),
            None => self.http11,
        }
    }
}

/// Why a request could not be parsed. Each maps to one 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The socket errored or the request was cut off mid-message.
    Io(String),
    /// The request line or a header violated the grammar or a size limit.
    Malformed(String),
    /// `Content-Length` exceeded the configured body cap (413).
    BodyTooLarge {
        /// Declared body length.
        declared: usize,
        /// Configured limit.
        limit: usize,
    },
}

/// Read one request. `Ok(None)` means the client closed the connection
/// cleanly between requests (normal keep-alive termination).
///
/// `interim` is the write half of the connection: a client announcing
/// `Expect: 100-continue` (curl does, automatically, for larger bodies)
/// holds the body back until the server answers `100 Continue`, so the
/// parser emits that interim response between the header and body phases —
/// otherwise every such request stalls for the client's expect-timeout.
pub fn read_request(
    stream: &mut impl BufRead,
    max_body_bytes: usize,
    interim: &mut impl Write,
) -> Result<Option<Request>, ParseError> {
    let line = match read_line(stream)? {
        // EOF before any byte of a new request: clean close.
        None => return Ok(None),
        Some(line) if line.is_empty() => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Malformed(format!("bad request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed(format!("unsupported {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let header = match read_line(stream)? {
            None => return Err(ParseError::Io("eof inside headers".into())),
            Some(line) if line.is_empty() => break,
            Some(line) => line,
        };
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header `{header}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    if headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
    {
        interim
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| interim.flush())
            .map_err(|e| ParseError::Io(format!("writing 100 Continue: {e}")))?;
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| ParseError::Io(format!("reading body: {e}")))?;

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path,
        http11: version == "HTTP/1.1",
        headers,
        body,
    }))
}

/// Read one CRLF-terminated line (LF tolerated), without the terminator.
/// `Ok(None)` on immediate EOF.
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => return Err(ParseError::Io("eof mid-line".into())),
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| ParseError::Malformed("non-UTF-8 header".into()))?;
                    return Ok(Some(line));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(ParseError::Malformed("line too long".into()));
                }
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
}

/// What [`IncrementalParser::next_request`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// Not enough bytes buffered for a complete request yet.
    Incomplete,
    /// One complete request; pipelined leftovers stay buffered for the
    /// next call.
    Request(Box<Request>),
    /// The client signalled end-of-requests (an empty line where a request
    /// line was expected — the blocking parser's `Ok(None)`): close
    /// cleanly.
    Close,
}

enum IncrementalState {
    /// Accumulating request line + headers.
    Head {
        /// Parsed request line, once its CRLF has arrived.
        request_line: Option<(String, String, bool)>,
        /// Headers parsed so far (names lowercased).
        headers: Vec<(String, String)>,
    },
    /// Head complete; waiting for `content_length` body bytes.
    Body {
        request_line: (String, String, bool),
        headers: Vec<(String, String)>,
        content_length: usize,
    },
}

/// A non-blocking HTTP/1.1 request parser: the per-connection state
/// machine of the event loop.
///
/// Feed it whatever the socket produced — single bytes, half a header,
/// three pipelined requests — and poll [`next_request`]
/// (IncrementalParser::next_request). Limits (line length, header count,
/// body cap) and error classification are identical to [`read_request`],
/// which the unit tests treat as the specification.
pub struct IncrementalParser {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
    /// Offset of the start of the current (unparsed) head line.
    cursor: usize,
    /// How far `buf` has been scanned for a newline (avoids rescans).
    scanned: usize,
    state: IncrementalState,
    /// Set when a parsed head carried `Expect: 100-continue`; the caller
    /// takes it (once) and writes the interim response.
    pending_continue: bool,
    max_body_bytes: usize,
}

impl IncrementalParser {
    /// A fresh parser for one connection.
    pub fn new(max_body_bytes: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            cursor: 0,
            scanned: 0,
            state: IncrementalState::Head {
                request_line: None,
                headers: Vec::new(),
            },
            pending_continue: false,
            max_body_bytes,
        }
    }

    /// Append bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True while a *partial* request sits in the buffer (bytes have
    /// arrived, or head lines were parsed, without completing a request).
    /// Distinguishes the header-read timeout from the idle timeout.
    pub fn mid_request(&self) -> bool {
        self.buffered() > 0
            || matches!(
                &self.state,
                IncrementalState::Head {
                    request_line: Some(_),
                    ..
                } | IncrementalState::Body { .. }
            )
    }

    /// Take the one-shot `Expect: 100-continue` flag; the caller owes the
    /// client an interim `100 Continue` when this returns true.
    pub fn take_continue(&mut self) -> bool {
        std::mem::take(&mut self.pending_continue)
    }

    /// Reclaim consumed bytes after a completed request.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.cursor -= self.start;
            self.scanned -= self.start;
            self.start = 0;
        }
    }

    /// Try to produce the next complete request from the buffered bytes.
    ///
    /// Errors are terminal: the connection must be answered 4xx and
    /// closed, exactly like the blocking parser's error path.
    pub fn next_request(&mut self) -> Result<ParseOutcome, ParseError> {
        loop {
            match &mut self.state {
                IncrementalState::Body { content_length, .. } => {
                    let need = *content_length;
                    if self.buf.len() - self.cursor < need {
                        return Ok(ParseOutcome::Incomplete);
                    }
                    let body = self.buf[self.cursor..self.cursor + need].to_vec();
                    self.cursor += need;
                    self.scanned = self.cursor;
                    self.start = self.cursor;
                    let state = std::mem::replace(
                        &mut self.state,
                        IncrementalState::Head {
                            request_line: None,
                            headers: Vec::new(),
                        },
                    );
                    let IncrementalState::Body {
                        request_line: (method, path, http11),
                        headers,
                        ..
                    } = state
                    else {
                        unreachable!()
                    };
                    self.compact();
                    return Ok(ParseOutcome::Request(Box::new(Request {
                        method,
                        path,
                        http11,
                        headers,
                        body,
                    })));
                }
                IncrementalState::Head { .. } => {
                    // Find the end of the current line.
                    let Some(nl_rel) = self.buf[self.scanned..].iter().position(|&b| b == b'\n')
                    else {
                        self.scanned = self.buf.len();
                        // Mirror the blocking parser's per-line cap (the
                        // pending `\r` of an eventual CRLF counts, the
                        // `\n` does not).
                        if self.buf.len() - self.cursor > MAX_LINE_BYTES {
                            return Err(ParseError::Malformed("line too long".into()));
                        }
                        return Ok(ParseOutcome::Incomplete);
                    };
                    let nl = self.scanned + nl_rel;
                    if nl - self.cursor > MAX_LINE_BYTES {
                        return Err(ParseError::Malformed("line too long".into()));
                    }
                    let mut line_end = nl;
                    if line_end > self.cursor && self.buf[line_end - 1] == b'\r' {
                        line_end -= 1;
                    }
                    let line = std::str::from_utf8(&self.buf[self.cursor..line_end])
                        .map_err(|_| ParseError::Malformed("non-UTF-8 header".into()))?
                        .to_string();
                    self.cursor = nl + 1;
                    self.scanned = self.cursor;

                    let IncrementalState::Head {
                        request_line,
                        headers,
                    } = &mut self.state
                    else {
                        unreachable!()
                    };
                    match request_line {
                        None => {
                            if line.is_empty() {
                                // An empty line where a request line was
                                // expected: the blocking parser treats it
                                // as a clean end of the request stream.
                                self.start = self.cursor;
                                self.compact();
                                return Ok(ParseOutcome::Close);
                            }
                            let mut parts = line.split(' ');
                            let (method, target, version) =
                                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                                    (Some(m), Some(t), Some(v), None)
                                        if !m.is_empty() && !t.is_empty() =>
                                    {
                                        (m, t, v)
                                    }
                                    _ => {
                                        return Err(ParseError::Malformed(format!(
                                            "bad request line `{line}`"
                                        )))
                                    }
                                };
                            if version != "HTTP/1.1" && version != "HTTP/1.0" {
                                return Err(ParseError::Malformed(format!(
                                    "unsupported {version}"
                                )));
                            }
                            let path = target.split('?').next().unwrap_or(target).to_string();
                            *request_line =
                                Some((method.to_ascii_uppercase(), path, version == "HTTP/1.1"));
                        }
                        Some(_) if line.is_empty() => {
                            // End of headers: the same post-head checks as
                            // the blocking parser, in the same order.
                            if headers.iter().any(|(k, v)| {
                                k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity")
                            }) {
                                return Err(ParseError::Malformed(
                                    "chunked transfer encoding is not supported".into(),
                                ));
                            }
                            let content_length =
                                match headers.iter().find(|(k, _)| k == "content-length") {
                                    None => 0,
                                    Some((_, v)) => v.parse::<usize>().map_err(|_| {
                                        ParseError::Malformed(format!("bad content-length `{v}`"))
                                    })?,
                                };
                            if content_length > self.max_body_bytes {
                                return Err(ParseError::BodyTooLarge {
                                    declared: content_length,
                                    limit: self.max_body_bytes,
                                });
                            }
                            if headers.iter().any(|(k, v)| {
                                k == "expect" && v.eq_ignore_ascii_case("100-continue")
                            }) {
                                self.pending_continue = true;
                            }
                            let IncrementalState::Head {
                                request_line: Some(request_line),
                                headers,
                            } = std::mem::replace(
                                &mut self.state,
                                IncrementalState::Head {
                                    request_line: None,
                                    headers: Vec::new(),
                                },
                            )
                            else {
                                unreachable!()
                            };
                            self.state = IncrementalState::Body {
                                request_line,
                                headers,
                                content_length,
                            };
                        }
                        Some(_) => {
                            if headers.len() >= MAX_HEADERS {
                                return Err(ParseError::Malformed("too many headers".into()));
                            }
                            let Some((name, value)) = line.split_once(':') else {
                                return Err(ParseError::Malformed(format!("bad header `{line}`")));
                            };
                            headers
                                .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                        }
                    }
                }
            }
        }
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// An `{"error": ...}` JSON response.
    pub fn error(status: u16, message: &str) -> Self {
        let payload = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_string(),
            serde::Value::Str(message.to_string()),
        )]))
        .unwrap_or_else(|_| "{\"error\":\"unrenderable\"}".to_string());
        Self::json(status, payload)
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize onto the wire. `close` adds `Connection: close`.
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        };
        let mut head = format!("HTTP/1.1 {} {reason}\r\n", self.status);
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024, &mut Vec::new())
    }

    #[test]
    fn parses_post_with_body() {
        let request = parse("POST /advise HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/advise");
        assert_eq!(request.body, b"{\"a\"");
        assert_eq!(request.header("host"), Some("x"));
        assert!(request.keep_alive());
    }

    #[test]
    fn connection_close_is_honoured_and_query_strings_stripped() {
        let request = parse("GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/metrics");
        assert!(!request.keep_alive());
    }

    #[test]
    fn eof_between_requests_is_a_clean_close() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn http_1_0_defaults_to_close_and_opts_into_keep_alive() {
        let request = parse("GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!request.http11);
        assert!(!request.keep_alive(), "1.0 without keep-alive must close");
        let request = parse("GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(request.keep_alive());
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response_before_the_body() {
        let raw = "POST /advise HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        let request = read_request(&mut BufReader::new(raw.as_bytes()), 1024, &mut interim)
            .unwrap()
            .unwrap();
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        assert_eq!(request.body, b"ok");
        // No Expect header: no interim response.
        let mut interim = Vec::new();
        read_request(
            &mut BufReader::new("GET / HTTP/1.1\r\n\r\n".as_bytes()),
            1024,
            &mut interim,
        )
        .unwrap()
        .unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let err = parse("POST /advise HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::BodyTooLarge {
                declared: 4096,
                limit: 1024
            }
        ));
    }

    #[test]
    fn malformed_request_lines_are_errors() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
    }

    #[test]
    fn responses_render_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    // ---- incremental parser: the blocking parser is the specification ----

    /// Run the *blocking* parser over `raw` to exhaustion: the reference
    /// result the incremental parser must reproduce byte-identically.
    fn blocking_all(raw: &[u8]) -> Vec<Result<Option<Request>, ParseError>> {
        let mut reader = BufReader::new(raw);
        let mut results = Vec::new();
        loop {
            let result = read_request(&mut reader, 1024, &mut Vec::new());
            let done = !matches!(result, Ok(Some(_)));
            results.push(result);
            if done {
                return results;
            }
        }
    }

    /// Run the incremental parser over `raw`, fed in `chunk`-byte pieces,
    /// in the shape `blocking_all` produces. A trailing `Incomplete` (the
    /// incremental parser cannot distinguish "no more bytes yet" from EOF;
    /// the event loop layers EOF on top) is mapped to the blocking
    /// parser's corresponding terminal: `Ok(None)` between requests,
    /// `Err(Io)` mid-request.
    fn incremental_all(raw: &[u8], chunk: usize) -> Vec<Result<Option<Request>, ParseError>> {
        let mut parser = IncrementalParser::new(1024);
        let mut results = Vec::new();
        let mut offset = 0;
        loop {
            match parser.next_request() {
                Ok(ParseOutcome::Request(request)) => {
                    results.push(Ok(Some(*request)));
                    continue;
                }
                Ok(ParseOutcome::Close) => {
                    results.push(Ok(None));
                    return results;
                }
                Err(error) => {
                    results.push(Err(error));
                    return results;
                }
                Ok(ParseOutcome::Incomplete) => {
                    if offset >= raw.len() {
                        // EOF as the event loop classifies it.
                        results.push(if parser.mid_request() {
                            Err(ParseError::Io("eof mid-request".into()))
                        } else {
                            Ok(None)
                        });
                        return results;
                    }
                    let end = (offset + chunk).min(raw.len());
                    parser.feed(&raw[offset..end]);
                    offset = end;
                }
            }
        }
    }

    /// Both parsers over the same payload at every split granularity; the
    /// parsed requests must be identical (errors match by class — their
    /// detail strings legitimately differ in IO phrasing).
    fn assert_equivalent(raw: &[u8]) {
        let reference = blocking_all(raw);
        for chunk in [1, 2, 3, 7, raw.len().max(1)] {
            let incremental = incremental_all(raw, chunk);
            assert_eq!(
                reference.len(),
                incremental.len(),
                "result count diverged at chunk={chunk} for {:?}",
                String::from_utf8_lossy(raw)
            );
            for (r, i) in reference.iter().zip(&incremental) {
                match (r, i) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "chunk={chunk}"),
                    (Err(ParseError::Io(_)), Err(ParseError::Io(_))) => {}
                    (Err(a), Err(b)) => assert_eq!(a, b, "chunk={chunk}"),
                    (a, b) => panic!("diverged at chunk={chunk}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn incremental_matches_blocking_across_split_points() {
        // Split points land inside the request line, headers, and body at
        // chunk sizes 1/2/3/7.
        assert_equivalent(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_equivalent(b"POST /advise HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"");
        assert_equivalent(b"GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_equivalent(b"GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        // Bare-LF tolerance, header whitespace, case folding.
        assert_equivalent(b"get /x HTTP/1.1\nHOST:   spacey \n\n");
    }

    #[test]
    fn incremental_matches_blocking_on_pipelined_requests() {
        assert_equivalent(
            b"POST /advise HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        // Three in one buffer, mixed methods and bodies.
        assert_equivalent(
            b"GET /a HTTP/1.1\r\n\r\n\
              POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz\
              GET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
    }

    #[test]
    fn incremental_matches_blocking_on_errors_and_limits() {
        assert_equivalent(b"NONSENSE\r\n\r\n");
        assert_equivalent(b"GET / SPDY/9\r\n\r\n");
        assert_equivalent(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_equivalent(b"POST / HTTP/1.1\r\nBroken header line\r\n\r\n");
        assert_equivalent(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert_equivalent(b"POST /advise HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
        // Truncated body: blocking sees Io(eof), incremental sees eternal
        // Incomplete mid-request → same class.
        assert_equivalent(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        // Empty line where a request line belongs: clean close both ways.
        assert_equivalent(b"\r\n");
        assert_equivalent(b"");
        // Oversized request line.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(9000));
        assert_equivalent(long.as_bytes());
        // Too many headers.
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..70 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_equivalent(many.as_bytes());
    }

    #[test]
    fn incremental_expect_continue_is_flagged_once() {
        let raw = b"POST /advise HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut parser = IncrementalParser::new(1024);
        // Feed only the head: the flag must be available before the body.
        let head_len = raw.len() - 2;
        parser.feed(&raw[..head_len]);
        assert_eq!(parser.next_request().unwrap(), ParseOutcome::Incomplete);
        assert!(parser.take_continue(), "continue not flagged after head");
        assert!(!parser.take_continue(), "flag must be one-shot");
        parser.feed(&raw[head_len..]);
        match parser.next_request().unwrap() {
            ParseOutcome::Request(request) => assert_eq!(request.body, b"ok"),
            other => panic!("expected the request, got {other:?}"),
        }
        assert!(!parser.take_continue());
    }

    #[test]
    fn incremental_mid_request_distinguishes_idle_from_stalled() {
        let mut parser = IncrementalParser::new(1024);
        assert!(!parser.mid_request(), "fresh parser is idle");
        parser.feed(b"GET /healthz HT");
        assert_eq!(parser.next_request().unwrap(), ParseOutcome::Incomplete);
        assert!(parser.mid_request(), "half a request line is a stall");
        parser.feed(b"TP/1.1\r\nHost: x\r\n\r\n");
        assert!(matches!(
            parser.next_request().unwrap(),
            ParseOutcome::Request(_)
        ));
        assert!(!parser.mid_request(), "complete request consumed: idle");
    }
}
