//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The serving tier needs exactly three routes, bodies of modest size, and
//! sequential keep-alive — not a general web framework. Everything else
//! (chunked transfer, pipelining, multipart, TLS) is out of scope and
//! rejected cleanly. The parser enforces hard limits on request-line,
//! header and body sizes so a misbehaving client cannot balloon a worker's
//! memory.

use std::io::{BufRead, Write};

/// Upper bound on the request line and on each header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercase (`GET`, `POST`).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0` (the two versions the
    /// parser admits); they default to opposite connection persistence.
    pub http11: bool,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 defaults to close unless the client
    /// sends `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("keep-alive"),
            None => self.http11,
        }
    }
}

/// Why a request could not be parsed. Each maps to one 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The socket errored or the request was cut off mid-message.
    Io(String),
    /// The request line or a header violated the grammar or a size limit.
    Malformed(String),
    /// `Content-Length` exceeded the configured body cap (413).
    BodyTooLarge {
        /// Declared body length.
        declared: usize,
        /// Configured limit.
        limit: usize,
    },
}

/// Read one request. `Ok(None)` means the client closed the connection
/// cleanly between requests (normal keep-alive termination).
///
/// `interim` is the write half of the connection: a client announcing
/// `Expect: 100-continue` (curl does, automatically, for larger bodies)
/// holds the body back until the server answers `100 Continue`, so the
/// parser emits that interim response between the header and body phases —
/// otherwise every such request stalls for the client's expect-timeout.
pub fn read_request(
    stream: &mut impl BufRead,
    max_body_bytes: usize,
    interim: &mut impl Write,
) -> Result<Option<Request>, ParseError> {
    let line = match read_line(stream)? {
        // EOF before any byte of a new request: clean close.
        None => return Ok(None),
        Some(line) if line.is_empty() => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Malformed(format!("bad request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed(format!("unsupported {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let header = match read_line(stream)? {
            None => return Err(ParseError::Io("eof inside headers".into())),
            Some(line) if line.is_empty() => break,
            Some(line) => line,
        };
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header `{header}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    if headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
    {
        interim
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| interim.flush())
            .map_err(|e| ParseError::Io(format!("writing 100 Continue: {e}")))?;
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| ParseError::Io(format!("reading body: {e}")))?;

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path,
        http11: version == "HTTP/1.1",
        headers,
        body,
    }))
}

/// Read one CRLF-terminated line (LF tolerated), without the terminator.
/// `Ok(None)` on immediate EOF.
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => return Err(ParseError::Io("eof mid-line".into())),
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| ParseError::Malformed("non-UTF-8 header".into()))?;
                    return Ok(Some(line));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(ParseError::Malformed("line too long".into()));
                }
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// An `{"error": ...}` JSON response.
    pub fn error(status: u16, message: &str) -> Self {
        let payload = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_string(),
            serde::Value::Str(message.to_string()),
        )]))
        .unwrap_or_else(|_| "{\"error\":\"unrenderable\"}".to_string());
        Self::json(status, payload)
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize onto the wire. `close` adds `Connection: close`.
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        };
        let mut head = format!("HTTP/1.1 {} {reason}\r\n", self.status);
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024, &mut Vec::new())
    }

    #[test]
    fn parses_post_with_body() {
        let request = parse("POST /advise HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/advise");
        assert_eq!(request.body, b"{\"a\"");
        assert_eq!(request.header("host"), Some("x"));
        assert!(request.keep_alive());
    }

    #[test]
    fn connection_close_is_honoured_and_query_strings_stripped() {
        let request = parse("GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/metrics");
        assert!(!request.keep_alive());
    }

    #[test]
    fn eof_between_requests_is_a_clean_close() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn http_1_0_defaults_to_close_and_opts_into_keep_alive() {
        let request = parse("GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!request.http11);
        assert!(!request.keep_alive(), "1.0 without keep-alive must close");
        let request = parse("GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(request.keep_alive());
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response_before_the_body() {
        let raw = "POST /advise HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        let request = read_request(&mut BufReader::new(raw.as_bytes()), 1024, &mut interim)
            .unwrap()
            .unwrap();
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        assert_eq!(request.body, b"ok");
        // No Expect header: no interim response.
        let mut interim = Vec::new();
        read_request(
            &mut BufReader::new("GET / HTTP/1.1\r\n\r\n".as_bytes()),
            1024,
            &mut interim,
        )
        .unwrap()
        .unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let err = parse("POST /advise HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::BodyTooLarge {
                declared: 4096,
                limit: 1024
            }
        ));
    }

    #[test]
    fn malformed_request_lines_are_errors() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
    }

    #[test]
    fn responses_render_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
