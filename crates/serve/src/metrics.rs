//! Serving counters: request accounting, admission-control rejections, and
//! the micro-batcher's coalescing statistics.
//!
//! Counters are relaxed atomics — they are monotonic tallies, not
//! synchronization — and a [`MetricsSnapshot`] is a plain copy that the
//! `/metrics` endpoint renders in Prometheus text exposition format.

use pg_analyze::{Diagnostic, RULE_IDS};
use pg_obs::{HistogramSnapshot, Stage};
use serde::Serialize;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of distinct static-analysis rules ([`pg_analyze::RULE_IDS`]).
const RULE_COUNT: usize = RULE_IDS.len();

/// Upper bounds of the coalesced-batch-size histogram buckets (a batch of
/// size `s` tallies into the first bucket with `bound >= s`; larger
/// batches land in the implicit `+Inf` overflow).
pub const BATCH_SIZE_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Live counters shared by the listener, the connection workers and the
/// micro-batcher.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// HTTP requests received, any route.
    pub(crate) http_requests: AtomicU64,
    /// Requests answered 4xx for malformed HTTP or JSON.
    pub(crate) http_bad_requests: AtomicU64,
    /// `/advise` requests admitted and answered 200.
    pub(crate) advise_ok: AtomicU64,
    /// `/advise` requests admitted but failed in the engine.
    pub(crate) advise_failed: AtomicU64,
    /// `/advise` requests rejected 429 by admission control.
    pub(crate) advise_rejected: AtomicU64,
    /// Requests rejected at the untrusted-input boundary: oversized
    /// bodies (413) and frontend parse-budget violations (422).
    pub(crate) parse_rejected: AtomicU64,
    /// `/tune` requests received (admitted or not).
    pub(crate) tune_requests: AtomicU64,
    /// `/tune` requests answered 200.
    pub(crate) tune_ok: AtomicU64,
    /// `/tune` requests admitted but failed in the tuner.
    pub(crate) tune_failed: AtomicU64,
    /// `/tune` requests rejected 429 by admission control.
    pub(crate) tune_rejected: AtomicU64,
    /// Connections shed 429 at accept because `max_connections` was
    /// reached.
    pub(crate) connections_shed: AtomicU64,
    /// Connections currently registered with the event loop (gauge).
    pub(crate) open_connections: AtomicU64,
    /// Connections accepted into the event loop since start.
    pub(crate) connections_opened: AtomicU64,
    /// Connections closed by an idle or header-read/write-progress
    /// timeout.
    pub(crate) conn_timeouts: AtomicU64,
    /// Times the event loop woke from `epoll_wait`.
    pub(crate) epoll_wakeups: AtomicU64,
    /// The micro-batcher's configured `max_batch` (gauge; denominator of
    /// the fill ratio).
    pub(crate) batch_capacity: AtomicU64,
    /// POST requests (`/advise` + `/tune`) currently being served — the
    /// shared admission gauge (gauge).
    pub(crate) in_flight: AtomicU64,
    /// Prediction batches executed by the micro-batcher.
    pub(crate) batches: AtomicU64,
    /// `/advise` requests that went through the micro-batcher.
    pub(crate) batched_requests: AtomicU64,
    /// Batches that coalesced more than one request.
    pub(crate) coalesced_batches: AtomicU64,
    /// Largest batch executed so far.
    pub(crate) max_batch_size: AtomicU64,
    /// Coalesced-batch-size histogram; bucket `i` counts batches of size
    /// `<= BATCH_SIZE_BUCKETS[i]` (last slot is the `+Inf` overflow).
    pub(crate) batch_size_buckets: [AtomicU64; BATCH_SIZE_BUCKETS.len() + 1],
    /// Variants pruned as provable races by the legality gate, across
    /// `/advise` and `/tune`.
    pub(crate) analyze_race_pruned: AtomicU64,
    /// Static-analysis diagnostics by rule, indexed like
    /// [`pg_analyze::RULE_IDS`].
    pub(crate) analyze_rule_counts: [AtomicU64; RULE_COUNT],
    /// Enqueue timestamp of the oldest request waiting in the batcher
    /// queue, as `pg_obs::monotonic_us() + 1` (0 means the queue is
    /// empty). The snapshot turns it into an age — the live "is the
    /// scheduler keeping up" gauge that the batch-wait *histogram*
    /// (which only sees completed waits) cannot show.
    pub(crate) batch_oldest_enqueue_us: AtomicU64,
}

/// Diagnostics tallied against one static-analysis rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct RuleCount {
    /// Stable rule id (one of [`pg_analyze::RULE_IDS`]).
    pub rule: String,
    /// Diagnostics of this rule surfaced so far.
    pub count: u64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct MetricsSnapshot {
    /// HTTP requests received, any route.
    pub http_requests: u64,
    /// Requests answered 4xx for malformed HTTP or JSON.
    pub http_bad_requests: u64,
    /// `/advise` requests answered 200.
    pub advise_ok: u64,
    /// `/advise` requests that failed in the engine.
    pub advise_failed: u64,
    /// `/advise` requests rejected 429 by admission control.
    pub advise_rejected: u64,
    /// Requests rejected at the untrusted-input boundary (oversized
    /// body or parse-budget violation).
    pub parse_rejected: u64,
    /// `/tune` requests received (admitted or not).
    pub tune_requests: u64,
    /// `/tune` requests answered 200.
    pub tune_ok: u64,
    /// `/tune` requests that failed in the tuner.
    pub tune_failed: u64,
    /// `/tune` requests rejected 429 by admission control.
    pub tune_rejected: u64,
    /// Connections shed 429 at accept (`max_connections` reached).
    pub connections_shed: u64,
    /// Connections currently registered with the event loop (gauge).
    pub open_connections: u64,
    /// Connections accepted into the event loop since start.
    pub connections_opened: u64,
    /// Connections closed by an idle or progress timeout.
    pub conn_timeouts: u64,
    /// Times the event loop woke from `epoll_wait`.
    pub epoll_wakeups: u64,
    /// The micro-batcher's configured `max_batch`.
    pub batch_capacity: u64,
    /// POST requests (`/advise` + `/tune`) currently in flight (the
    /// shared admission gauge).
    pub in_flight: u64,
    /// Prediction batches executed.
    pub batches: u64,
    /// Requests that went through the micro-batcher.
    pub batched_requests: u64,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: u64,
    /// Largest batch executed.
    pub max_batch_size: u64,
    /// Coalesced-batch-size histogram, non-cumulative, one count per
    /// [`BATCH_SIZE_BUCKETS`] bound plus a final `+Inf` overflow slot.
    pub batch_size_buckets: Vec<u64>,
    /// Variants pruned as provable races by the legality gate.
    pub analyze_race_pruned: u64,
    /// Static-analysis diagnostics by rule, in [`pg_analyze::RULE_IDS`]
    /// order (every rule is present, zero or not).
    pub analyze_rule_counts: Vec<RuleCount>,
    /// Age of the oldest request waiting in the batcher queue at snapshot
    /// time, microseconds (0 when the queue is empty).
    pub batch_oldest_wait_us: u64,
}

impl ServeMetrics {
    /// Record one executed batch of `size` coalesced requests.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        if size > 1 {
            self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.max_batch_size
            .fetch_max(size as u64, Ordering::Relaxed);
        let bucket = BATCH_SIZE_BUCKETS
            .iter()
            .position(|&bound| size as u64 <= bound)
            .unwrap_or(BATCH_SIZE_BUCKETS.len());
        self.batch_size_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record the static-analysis outcome of one served request: every
    /// surfaced diagnostic tallies against its rule, and `race_pruned`
    /// counts variants the legality gate removed.
    pub(crate) fn record_analysis(&self, diagnostics: &[Diagnostic], race_pruned: u64) {
        self.analyze_race_pruned
            .fetch_add(race_pruned, Ordering::Relaxed);
        for diag in diagnostics {
            if let Some(idx) = RULE_IDS.iter().position(|&id| id == diag.rule) {
                self.analyze_rule_counts[idx].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            http_requests: self.http_requests.load(Ordering::Relaxed),
            http_bad_requests: self.http_bad_requests.load(Ordering::Relaxed),
            advise_ok: self.advise_ok.load(Ordering::Relaxed),
            advise_failed: self.advise_failed.load(Ordering::Relaxed),
            advise_rejected: self.advise_rejected.load(Ordering::Relaxed),
            parse_rejected: self.parse_rejected.load(Ordering::Relaxed),
            tune_requests: self.tune_requests.load(Ordering::Relaxed),
            tune_ok: self.tune_ok.load(Ordering::Relaxed),
            tune_failed: self.tune_failed.load(Ordering::Relaxed),
            tune_rejected: self.tune_rejected.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            conn_timeouts: self.conn_timeouts.load(Ordering::Relaxed),
            epoll_wakeups: self.epoll_wakeups.load(Ordering::Relaxed),
            batch_capacity: self.batch_capacity.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
            batch_size_buckets: self
                .batch_size_buckets
                .iter()
                .map(|count| count.load(Ordering::Relaxed))
                .collect(),
            analyze_race_pruned: self.analyze_race_pruned.load(Ordering::Relaxed),
            analyze_rule_counts: RULE_IDS
                .iter()
                .zip(&self.analyze_rule_counts)
                .map(|(&rule, count)| RuleCount {
                    rule: rule.to_string(),
                    count: count.load(Ordering::Relaxed),
                })
                .collect(),
            batch_oldest_wait_us: match self.batch_oldest_enqueue_us.load(Ordering::Relaxed) {
                0 => 0,
                stamp => pg_obs::monotonic_us().saturating_sub(stamp - 1),
            },
        }
    }
}

/// Incremental Prometheus text-exposition builder: every family gets its
/// `# HELP`/`# TYPE` header exactly once, immediately before its samples.
/// Replaces the repeated ad-hoc `String` pushes the endpoint grew by
/// accretion — a family cannot forget its metadata anymore, because the
/// only way to emit samples is through a typed family method.
pub(crate) struct Exposition {
    out: String,
}

impl Exposition {
    pub(crate) fn new() -> Self {
        Self { out: String::new() }
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// A single-sample counter family.
    pub(crate) fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// A single-sample gauge family (`Display` covers u64 and formatted
    /// floats alike).
    pub(crate) fn gauge(&mut self, name: &str, help: &str, value: impl Display) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// A counter family with one `{key="value"}` label per sample.
    pub(crate) fn labeled_counter(
        &mut self,
        name: &str,
        help: &str,
        key: &str,
        rows: impl IntoIterator<Item = (String, u64)>,
    ) {
        self.header(name, help, "counter");
        for (label, value) in rows {
            self.out
                .push_str(&format!("{name}{{{key}=\"{label}\"}} {value}\n"));
        }
    }

    /// One histogram series: cumulative `_bucket` samples (the last bound
    /// must be `+Inf`), then `_sum` and `_count`. `labels` is the rendered
    /// label set shared by every sample (empty for an unlabelled family);
    /// the `# HELP`/`# TYPE` header is the caller's job via
    /// [`Exposition::histogram_header`], so multi-series families (one per
    /// stage) emit it exactly once.
    pub(crate) fn histogram_series(
        &mut self,
        name: &str,
        labels: &str,
        buckets: impl IntoIterator<Item = (String, u64)>,
        sum: impl Display,
        count: u64,
    ) {
        let sep = if labels.is_empty() { "" } else { "," };
        for (bound, cumulative) in buckets {
            self.out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        self.out.push_str(&format!(
            "{name}_sum{braces} {sum}\n{name}_count{braces} {count}\n"
        ));
    }

    /// The `# HELP`/`# TYPE` header of a histogram family.
    pub(crate) fn histogram_header(&mut self, name: &str, help: &str) {
        self.header(name, help, "histogram");
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }
}

/// Render the per-stage duration histograms (from
/// [`pg_obs::Obs::stage_snapshot`]) as one labelled Prometheus histogram
/// family, `paragraph_stage_duration_seconds{stage="..."}`. Every stage is
/// present even at zero count, so dashboards and the exposition test see a
/// stable family shape.
pub fn stage_histograms_to_prometheus(stages: &[(Stage, HistogramSnapshot)]) -> String {
    let mut expo = Exposition::new();
    expo.histogram_header(
        "paragraph_stage_duration_seconds",
        "Stage latency distributions across the serving pipeline",
    );
    for (stage, snapshot) in stages {
        let buckets = snapshot.cumulative().into_iter().map(|(bound, count)| {
            let bound = if bound.is_infinite() {
                "+Inf".to_string()
            } else {
                format!("{bound}")
            };
            (bound, count)
        });
        expo.histogram_series(
            "paragraph_stage_duration_seconds",
            &format!("stage=\"{}\"", stage.name()),
            buckets,
            format!("{:.6}", snapshot.sum_us as f64 / 1e6),
            snapshot.count,
        );
    }
    expo.finish()
}

impl MetricsSnapshot {
    /// Mean fraction of the batch cap that executed batches actually
    /// filled: `batched_requests / (batches * batch_capacity)`. Zero until
    /// the first batch runs. The PR 4 blind spot this closes: a cap that
    /// never fills means the backend's batched path is starved, and
    /// nothing on `/metrics` said so.
    pub fn batch_fill_ratio(&self) -> f64 {
        let denominator = self.batches.saturating_mul(self.batch_capacity);
        if denominator == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / denominator as f64
    }

    /// Render in Prometheus text exposition format (what `GET /metrics`
    /// returns). The per-stage duration histograms live in
    /// [`stage_histograms_to_prometheus`]; the endpoint concatenates both.
    pub fn to_prometheus(&self) -> String {
        let mut expo = Exposition::new();
        expo.counter(
            "paragraph_serve_http_requests_total",
            "HTTP requests received",
            self.http_requests,
        );
        expo.counter(
            "paragraph_serve_http_bad_requests_total",
            "Requests rejected for malformed HTTP or JSON",
            self.http_bad_requests,
        );
        expo.counter(
            "paragraph_serve_advise_ok_total",
            "Advise requests answered 200",
            self.advise_ok,
        );
        expo.counter(
            "paragraph_serve_advise_failed_total",
            "Advise requests that failed in the engine",
            self.advise_failed,
        );
        expo.counter(
            "paragraph_serve_advise_rejected_total",
            "Advise requests rejected by admission control",
            self.advise_rejected,
        );
        expo.counter(
            "paragraph_serve_parse_rejected_total",
            "Requests rejected at the untrusted-input boundary (oversized body or parse budget)",
            self.parse_rejected,
        );
        expo.counter(
            "paragraph_serve_tune_requests_total",
            "Tune requests received",
            self.tune_requests,
        );
        expo.counter(
            "paragraph_serve_tune_ok_total",
            "Tune requests answered 200",
            self.tune_ok,
        );
        expo.counter(
            "paragraph_serve_tune_failed_total",
            "Tune requests that failed in the tuner",
            self.tune_failed,
        );
        expo.counter(
            "paragraph_serve_tune_rejected_total",
            "Tune requests rejected by admission control",
            self.tune_rejected,
        );
        expo.counter(
            "paragraph_serve_connections_shed_total",
            "Connections shed at accept by the connection limit",
            self.connections_shed,
        );
        expo.counter(
            "paragraph_serve_connections_opened_total",
            "Connections accepted into the event loop",
            self.connections_opened,
        );
        expo.counter(
            "paragraph_serve_conn_timeouts_total",
            "Connections closed by an idle or progress timeout",
            self.conn_timeouts,
        );
        expo.counter(
            "paragraph_serve_epoll_wakeups_total",
            "Event-loop wakeups from epoll_wait",
            self.epoll_wakeups,
        );
        expo.counter(
            "paragraph_serve_batches_total",
            "Prediction batches executed",
            self.batches,
        );
        expo.counter(
            "paragraph_serve_batched_requests_total",
            "Advise requests served through the micro-batcher",
            self.batched_requests,
        );
        expo.counter(
            "paragraph_serve_coalesced_batches_total",
            "Batches that coalesced more than one request",
            self.coalesced_batches,
        );
        expo.counter(
            "paragraph_serve_analyze_race_pruned_total",
            "Variants pruned as provable races by the legality gate",
            self.analyze_race_pruned,
        );
        expo.labeled_counter(
            "paragraph_serve_analyze_rule_total",
            "Static-analysis diagnostics by rule",
            "rule",
            self.analyze_rule_counts
                .iter()
                .map(|r| (r.rule.clone(), r.count)),
        );
        expo.gauge(
            "paragraph_serve_in_flight",
            "POST requests (advise + tune) currently in flight",
            self.in_flight,
        );
        expo.gauge(
            "paragraph_serve_max_batch_size",
            "Largest batch executed",
            self.max_batch_size,
        );
        expo.gauge(
            "paragraph_serve_open_connections",
            "Connections registered with the event loop",
            self.open_connections,
        );
        expo.gauge(
            "paragraph_serve_batch_capacity",
            "Configured micro-batcher max_batch",
            self.batch_capacity,
        );
        expo.gauge(
            "paragraph_serve_batch_fill_ratio",
            "Mean fraction of the batch cap filled",
            format!("{:.6}", self.batch_fill_ratio()),
        );
        expo.gauge(
            "paragraph_serve_batch_oldest_wait_seconds",
            "Age of the oldest request waiting in the batcher queue",
            format!("{:.6}", self.batch_oldest_wait_us as f64 / 1e6),
        );
        // Cumulative histogram per the Prometheus convention: each bucket
        // counts batches of size <= its bound.
        expo.histogram_header(
            "paragraph_serve_batch_size",
            "Coalesced-batch size distribution",
        );
        let mut cumulative = 0u64;
        let buckets: Vec<(String, u64)> = self
            .batch_size_buckets
            .iter()
            .enumerate()
            .map(|(i, count)| {
                cumulative += count;
                let bound = BATCH_SIZE_BUCKETS
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                (bound, cumulative)
            })
            .collect();
        expo.histogram_series(
            "paragraph_serve_batch_size",
            "",
            buckets,
            self.batched_requests,
            self.batches,
        );
        expo.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accounting_tracks_coalescing() {
        let metrics = ServeMetrics::default();
        metrics.record_batch(1);
        metrics.record_batch(5);
        metrics.record_batch(3);
        let snap = metrics.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batched_requests, 9);
        assert_eq!(snap.coalesced_batches, 2);
        assert_eq!(snap.max_batch_size, 5);
    }

    #[test]
    fn prometheus_rendering_names_every_counter() {
        let metrics = ServeMetrics::default();
        metrics.record_batch(4);
        let text = metrics.snapshot().to_prometheus();
        for name in [
            "paragraph_serve_http_requests_total",
            "paragraph_serve_advise_ok_total",
            "paragraph_serve_advise_rejected_total",
            "paragraph_serve_tune_requests_total",
            "paragraph_serve_tune_ok_total",
            "paragraph_serve_tune_failed_total",
            "paragraph_serve_tune_rejected_total",
            "paragraph_serve_batches_total",
            "paragraph_serve_coalesced_batches_total",
            "paragraph_serve_max_batch_size",
            "paragraph_serve_in_flight",
            "paragraph_serve_analyze_race_pruned_total",
            "paragraph_serve_analyze_rule_total",
            "paragraph_serve_connections_opened_total",
            "paragraph_serve_conn_timeouts_total",
            "paragraph_serve_epoll_wakeups_total",
            "paragraph_serve_open_connections",
            "paragraph_serve_batch_capacity",
            "paragraph_serve_batch_fill_ratio",
            "paragraph_serve_batch_size_bucket",
            "paragraph_serve_batch_size_count",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("paragraph_serve_max_batch_size 4"));
    }

    #[test]
    fn fill_ratio_and_histogram_track_batches() {
        let metrics = ServeMetrics::default();
        metrics.batch_capacity.store(8, Ordering::Relaxed);
        metrics.record_batch(4); // bucket le=4
        metrics.record_batch(8); // bucket le=8
        let snap = metrics.snapshot();
        // 12 requests over 2 batches of capacity 8 → 12/16.
        assert!((snap.batch_fill_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(snap.batch_size_buckets.iter().sum::<u64>(), 2);
        let text = snap.to_prometheus();
        assert!(text.contains("paragraph_serve_batch_fill_ratio 0.75"));
        assert!(text.contains("paragraph_serve_batch_size_bucket{le=\"8\"} 2"));
        assert!(text.contains("paragraph_serve_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("paragraph_serve_batch_size_sum 12"));
        // Empty metrics render a zero ratio, not NaN.
        assert_eq!(MetricsSnapshot::default().batch_fill_ratio(), 0.0);
    }

    #[test]
    fn analysis_accounting_tallies_rules_and_pruned_variants() {
        use pg_analyze::{Diagnostic, Severity};
        let metrics = ServeMetrics::default();
        let diag = |rule: &str| Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            span: None,
            message: "x".to_string(),
        };
        metrics.record_analysis(
            &[
                diag("loop-carried-dependence"),
                diag("unknown-clause"),
                diag("loop-carried-dependence"),
                diag("not-a-registered-rule"), // ignored, never panics
            ],
            3,
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.analyze_race_pruned, 3);
        let count_of = |rule: &str| {
            snap.analyze_rule_counts
                .iter()
                .find(|r| r.rule == rule)
                .map(|r| r.count)
        };
        assert_eq!(count_of("loop-carried-dependence"), Some(2));
        assert_eq!(count_of("unknown-clause"), Some(1));
        assert_eq!(count_of("shared-scalar-race"), Some(0));
        let text = snap.to_prometheus();
        assert!(
            text.contains("paragraph_serve_analyze_rule_total{rule=\"loop-carried-dependence\"} 2")
        );
        assert!(text.contains("paragraph_serve_analyze_race_pruned_total 3"));
    }

    /// Walk the full exposition (serve counters + stage histograms)
    /// line-by-line: every sample line must parse as `name[{labels}] value`,
    /// every sample's family must have emitted `# HELP` then `# TYPE`
    /// beforehand, and no family may emit its header twice.
    #[test]
    fn exposition_format_parses_line_by_line() {
        use std::collections::HashSet;
        let metrics = ServeMetrics::default();
        metrics.record_batch(3);
        let hub = pg_obs::Obs::new(pg_obs::ObsConfig::default());
        hub.record_stage(Stage::Parse, std::time::Duration::from_micros(120));
        hub.record_stage(Stage::Predict, std::time::Duration::from_micros(900));
        let text = format!(
            "{}{}",
            metrics.snapshot().to_prometheus(),
            stage_histograms_to_prometheus(&hub.stage_snapshot())
        );

        let mut helped: HashSet<String> = HashSet::new();
        let mut typed: HashSet<String> = HashSet::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let family = rest.split(' ').next().unwrap().to_string();
                assert!(helped.insert(family.clone()), "duplicate HELP for {family}");
                assert!(rest.len() > family.len() + 1, "HELP without text: {line}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap_or("");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown metric type in: {line}"
                );
                assert!(helped.contains(&family), "TYPE before HELP for {family}");
                assert!(typed.insert(family), "duplicate TYPE in: {line}");
                continue;
            }
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample without value");
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("bad value: {line}"));
            assert!(value >= 0.0, "negative sample: {line}");
            let name = series.split('{').next().unwrap();
            if let Some(labels) = series.strip_prefix(name) {
                if !labels.is_empty() {
                    assert!(
                        labels.starts_with('{') && labels.ends_with('}'),
                        "malformed labels: {line}"
                    );
                    for pair in labels[1..labels.len() - 1].split(',') {
                        let (k, v) = pair.split_once('=').expect("label without =");
                        assert!(!k.is_empty() && v.starts_with('"') && v.ends_with('"'));
                    }
                }
            }
            // The family of a histogram sample drops the _bucket/_sum/_count
            // suffix.
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| typed.contains(*f))
                .unwrap_or(name);
            assert!(
                typed.contains(family),
                "sample before its TYPE header: {line}"
            );
        }
        assert_eq!(helped, typed, "every HELP family must also have a TYPE");
    }

    #[test]
    fn stage_histograms_render_every_stage_with_cumulative_buckets() {
        let hub = pg_obs::Obs::new(pg_obs::ObsConfig::default());
        hub.record_stage(Stage::BatchWait, std::time::Duration::from_micros(3));
        hub.record_stage(Stage::BatchWait, std::time::Duration::from_micros(5));
        let text = stage_histograms_to_prometheus(&hub.stage_snapshot());
        // One header for the whole family, one series per stage.
        assert_eq!(
            text.matches("# TYPE paragraph_stage_duration_seconds")
                .count(),
            1
        );
        for stage in Stage::ALL {
            assert!(
                text.contains(&format!(
                    "paragraph_stage_duration_seconds_count{{stage=\"{}\"}}",
                    stage.name()
                )),
                "missing stage {} in:\n{text}",
                stage.name()
            );
        }
        assert!(text.contains("paragraph_stage_duration_seconds_count{stage=\"batch_wait\"} 2"));
        // Both 3us and 5us land at or below the 8us bound; +Inf sees both.
        assert!(text.contains(
            "paragraph_stage_duration_seconds_bucket{stage=\"batch_wait\",le=\"+Inf\"} 2"
        ));
    }

    #[test]
    fn oldest_waiter_gauge_reports_age_and_empty_queue() {
        let metrics = ServeMetrics::default();
        assert_eq!(metrics.snapshot().batch_oldest_wait_us, 0);
        let stamp = pg_obs::monotonic_us();
        metrics
            .batch_oldest_enqueue_us
            .store(stamp + 1, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let age = metrics.snapshot().batch_oldest_wait_us;
        assert!(age >= 2_000, "age should reflect the wait: {age}");
        let text = metrics.snapshot().to_prometheus();
        assert!(text.contains("paragraph_serve_batch_oldest_wait_seconds"));
    }
}
