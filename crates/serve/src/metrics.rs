//! Serving counters: request accounting, admission-control rejections, and
//! the micro-batcher's coalescing statistics.
//!
//! Counters are relaxed atomics — they are monotonic tallies, not
//! synchronization — and a [`MetricsSnapshot`] is a plain copy that the
//! `/metrics` endpoint renders in Prometheus text exposition format.

use pg_analyze::{Diagnostic, RULE_IDS};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of distinct static-analysis rules ([`pg_analyze::RULE_IDS`]).
const RULE_COUNT: usize = RULE_IDS.len();

/// Upper bounds of the coalesced-batch-size histogram buckets (a batch of
/// size `s` tallies into the first bucket with `bound >= s`; larger
/// batches land in the implicit `+Inf` overflow).
pub const BATCH_SIZE_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Live counters shared by the listener, the connection workers and the
/// micro-batcher.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// HTTP requests received, any route.
    pub(crate) http_requests: AtomicU64,
    /// Requests answered 4xx for malformed HTTP or JSON.
    pub(crate) http_bad_requests: AtomicU64,
    /// `/advise` requests admitted and answered 200.
    pub(crate) advise_ok: AtomicU64,
    /// `/advise` requests admitted but failed in the engine.
    pub(crate) advise_failed: AtomicU64,
    /// `/advise` requests rejected 429 by admission control.
    pub(crate) advise_rejected: AtomicU64,
    /// `/tune` requests received (admitted or not).
    pub(crate) tune_requests: AtomicU64,
    /// `/tune` requests answered 200.
    pub(crate) tune_ok: AtomicU64,
    /// `/tune` requests admitted but failed in the tuner.
    pub(crate) tune_failed: AtomicU64,
    /// `/tune` requests rejected 429 by admission control.
    pub(crate) tune_rejected: AtomicU64,
    /// Connections shed 429 at accept because `max_connections` was
    /// reached.
    pub(crate) connections_shed: AtomicU64,
    /// Connections currently registered with the event loop (gauge).
    pub(crate) open_connections: AtomicU64,
    /// Connections accepted into the event loop since start.
    pub(crate) connections_opened: AtomicU64,
    /// Connections closed by an idle or header-read/write-progress
    /// timeout.
    pub(crate) conn_timeouts: AtomicU64,
    /// Times the event loop woke from `epoll_wait`.
    pub(crate) epoll_wakeups: AtomicU64,
    /// The micro-batcher's configured `max_batch` (gauge; denominator of
    /// the fill ratio).
    pub(crate) batch_capacity: AtomicU64,
    /// POST requests (`/advise` + `/tune`) currently being served — the
    /// shared admission gauge (gauge).
    pub(crate) in_flight: AtomicU64,
    /// Prediction batches executed by the micro-batcher.
    pub(crate) batches: AtomicU64,
    /// `/advise` requests that went through the micro-batcher.
    pub(crate) batched_requests: AtomicU64,
    /// Batches that coalesced more than one request.
    pub(crate) coalesced_batches: AtomicU64,
    /// Largest batch executed so far.
    pub(crate) max_batch_size: AtomicU64,
    /// Coalesced-batch-size histogram; bucket `i` counts batches of size
    /// `<= BATCH_SIZE_BUCKETS[i]` (last slot is the `+Inf` overflow).
    pub(crate) batch_size_buckets: [AtomicU64; BATCH_SIZE_BUCKETS.len() + 1],
    /// Variants pruned as provable races by the legality gate, across
    /// `/advise` and `/tune`.
    pub(crate) analyze_race_pruned: AtomicU64,
    /// Static-analysis diagnostics by rule, indexed like
    /// [`pg_analyze::RULE_IDS`].
    pub(crate) analyze_rule_counts: [AtomicU64; RULE_COUNT],
}

/// Diagnostics tallied against one static-analysis rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct RuleCount {
    /// Stable rule id (one of [`pg_analyze::RULE_IDS`]).
    pub rule: String,
    /// Diagnostics of this rule surfaced so far.
    pub count: u64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct MetricsSnapshot {
    /// HTTP requests received, any route.
    pub http_requests: u64,
    /// Requests answered 4xx for malformed HTTP or JSON.
    pub http_bad_requests: u64,
    /// `/advise` requests answered 200.
    pub advise_ok: u64,
    /// `/advise` requests that failed in the engine.
    pub advise_failed: u64,
    /// `/advise` requests rejected 429 by admission control.
    pub advise_rejected: u64,
    /// `/tune` requests received (admitted or not).
    pub tune_requests: u64,
    /// `/tune` requests answered 200.
    pub tune_ok: u64,
    /// `/tune` requests that failed in the tuner.
    pub tune_failed: u64,
    /// `/tune` requests rejected 429 by admission control.
    pub tune_rejected: u64,
    /// Connections shed 429 at accept (`max_connections` reached).
    pub connections_shed: u64,
    /// Connections currently registered with the event loop (gauge).
    pub open_connections: u64,
    /// Connections accepted into the event loop since start.
    pub connections_opened: u64,
    /// Connections closed by an idle or progress timeout.
    pub conn_timeouts: u64,
    /// Times the event loop woke from `epoll_wait`.
    pub epoll_wakeups: u64,
    /// The micro-batcher's configured `max_batch`.
    pub batch_capacity: u64,
    /// POST requests (`/advise` + `/tune`) currently in flight (the
    /// shared admission gauge).
    pub in_flight: u64,
    /// Prediction batches executed.
    pub batches: u64,
    /// Requests that went through the micro-batcher.
    pub batched_requests: u64,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: u64,
    /// Largest batch executed.
    pub max_batch_size: u64,
    /// Coalesced-batch-size histogram, non-cumulative, one count per
    /// [`BATCH_SIZE_BUCKETS`] bound plus a final `+Inf` overflow slot.
    pub batch_size_buckets: Vec<u64>,
    /// Variants pruned as provable races by the legality gate.
    pub analyze_race_pruned: u64,
    /// Static-analysis diagnostics by rule, in [`pg_analyze::RULE_IDS`]
    /// order (every rule is present, zero or not).
    pub analyze_rule_counts: Vec<RuleCount>,
}

impl ServeMetrics {
    /// Record one executed batch of `size` coalesced requests.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        if size > 1 {
            self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.max_batch_size
            .fetch_max(size as u64, Ordering::Relaxed);
        let bucket = BATCH_SIZE_BUCKETS
            .iter()
            .position(|&bound| size as u64 <= bound)
            .unwrap_or(BATCH_SIZE_BUCKETS.len());
        self.batch_size_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record the static-analysis outcome of one served request: every
    /// surfaced diagnostic tallies against its rule, and `race_pruned`
    /// counts variants the legality gate removed.
    pub(crate) fn record_analysis(&self, diagnostics: &[Diagnostic], race_pruned: u64) {
        self.analyze_race_pruned
            .fetch_add(race_pruned, Ordering::Relaxed);
        for diag in diagnostics {
            if let Some(idx) = RULE_IDS.iter().position(|&id| id == diag.rule) {
                self.analyze_rule_counts[idx].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            http_requests: self.http_requests.load(Ordering::Relaxed),
            http_bad_requests: self.http_bad_requests.load(Ordering::Relaxed),
            advise_ok: self.advise_ok.load(Ordering::Relaxed),
            advise_failed: self.advise_failed.load(Ordering::Relaxed),
            advise_rejected: self.advise_rejected.load(Ordering::Relaxed),
            tune_requests: self.tune_requests.load(Ordering::Relaxed),
            tune_ok: self.tune_ok.load(Ordering::Relaxed),
            tune_failed: self.tune_failed.load(Ordering::Relaxed),
            tune_rejected: self.tune_rejected.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            conn_timeouts: self.conn_timeouts.load(Ordering::Relaxed),
            epoll_wakeups: self.epoll_wakeups.load(Ordering::Relaxed),
            batch_capacity: self.batch_capacity.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
            batch_size_buckets: self
                .batch_size_buckets
                .iter()
                .map(|count| count.load(Ordering::Relaxed))
                .collect(),
            analyze_race_pruned: self.analyze_race_pruned.load(Ordering::Relaxed),
            analyze_rule_counts: RULE_IDS
                .iter()
                .zip(&self.analyze_rule_counts)
                .map(|(&rule, count)| RuleCount {
                    rule: rule.to_string(),
                    count: count.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl MetricsSnapshot {
    /// Mean fraction of the batch cap that executed batches actually
    /// filled: `batched_requests / (batches * batch_capacity)`. Zero until
    /// the first batch runs. The PR 4 blind spot this closes: a cap that
    /// never fills means the backend's batched path is starved, and
    /// nothing on `/metrics` said so.
    pub fn batch_fill_ratio(&self) -> f64 {
        let denominator = self.batches.saturating_mul(self.batch_capacity);
        if denominator == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / denominator as f64
    }

    /// Render in Prometheus text exposition format (what `GET /metrics`
    /// returns).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP paragraph_serve_{name} {help}\n\
                 # TYPE paragraph_serve_{name} counter\n\
                 paragraph_serve_{name} {value}\n"
            ));
        };
        counter(
            "http_requests_total",
            "HTTP requests received",
            self.http_requests,
        );
        counter(
            "http_bad_requests_total",
            "Requests rejected for malformed HTTP or JSON",
            self.http_bad_requests,
        );
        counter(
            "advise_ok_total",
            "Advise requests answered 200",
            self.advise_ok,
        );
        counter(
            "advise_failed_total",
            "Advise requests that failed in the engine",
            self.advise_failed,
        );
        counter(
            "advise_rejected_total",
            "Advise requests rejected by admission control",
            self.advise_rejected,
        );
        counter(
            "tune_requests_total",
            "Tune requests received",
            self.tune_requests,
        );
        counter("tune_ok_total", "Tune requests answered 200", self.tune_ok);
        counter(
            "tune_failed_total",
            "Tune requests that failed in the tuner",
            self.tune_failed,
        );
        counter(
            "tune_rejected_total",
            "Tune requests rejected by admission control",
            self.tune_rejected,
        );
        counter(
            "connections_shed_total",
            "Connections shed at accept by the connection limit",
            self.connections_shed,
        );
        counter(
            "connections_opened_total",
            "Connections accepted into the event loop",
            self.connections_opened,
        );
        counter(
            "conn_timeouts_total",
            "Connections closed by an idle or progress timeout",
            self.conn_timeouts,
        );
        counter(
            "epoll_wakeups_total",
            "Event-loop wakeups from epoll_wait",
            self.epoll_wakeups,
        );
        counter("batches_total", "Prediction batches executed", self.batches);
        counter(
            "batched_requests_total",
            "Advise requests served through the micro-batcher",
            self.batched_requests,
        );
        counter(
            "coalesced_batches_total",
            "Batches that coalesced more than one request",
            self.coalesced_batches,
        );
        counter(
            "analyze_race_pruned_total",
            "Variants pruned as provable races by the legality gate",
            self.analyze_race_pruned,
        );
        out.push_str(
            "# HELP paragraph_serve_analyze_rule_total Static-analysis diagnostics by rule\n\
             # TYPE paragraph_serve_analyze_rule_total counter\n",
        );
        for rule in &self.analyze_rule_counts {
            out.push_str(&format!(
                "paragraph_serve_analyze_rule_total{{rule=\"{}\"}} {}\n",
                rule.rule, rule.count
            ));
        }
        out.push_str(&format!(
            "# HELP paragraph_serve_in_flight POST requests (advise + tune) currently in flight\n\
             # TYPE paragraph_serve_in_flight gauge\n\
             paragraph_serve_in_flight {}\n",
            self.in_flight
        ));
        out.push_str(&format!(
            "# HELP paragraph_serve_max_batch_size Largest batch executed\n\
             # TYPE paragraph_serve_max_batch_size gauge\n\
             paragraph_serve_max_batch_size {}\n",
            self.max_batch_size
        ));
        out.push_str(&format!(
            "# HELP paragraph_serve_open_connections Connections registered with the event loop\n\
             # TYPE paragraph_serve_open_connections gauge\n\
             paragraph_serve_open_connections {}\n",
            self.open_connections
        ));
        out.push_str(&format!(
            "# HELP paragraph_serve_batch_capacity Configured micro-batcher max_batch\n\
             # TYPE paragraph_serve_batch_capacity gauge\n\
             paragraph_serve_batch_capacity {}\n",
            self.batch_capacity
        ));
        out.push_str(&format!(
            "# HELP paragraph_serve_batch_fill_ratio Mean fraction of the batch cap filled\n\
             # TYPE paragraph_serve_batch_fill_ratio gauge\n\
             paragraph_serve_batch_fill_ratio {:.6}\n",
            self.batch_fill_ratio()
        ));
        // Cumulative histogram per the Prometheus convention: each bucket
        // counts batches of size <= its bound.
        out.push_str(
            "# HELP paragraph_serve_batch_size Coalesced-batch size distribution\n\
             # TYPE paragraph_serve_batch_size histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, count) in self.batch_size_buckets.iter().enumerate() {
            cumulative += count;
            let bound = BATCH_SIZE_BUCKETS
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_string());
            out.push_str(&format!(
                "paragraph_serve_batch_size_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "paragraph_serve_batch_size_sum {}\nparagraph_serve_batch_size_count {}\n",
            self.batched_requests, self.batches
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accounting_tracks_coalescing() {
        let metrics = ServeMetrics::default();
        metrics.record_batch(1);
        metrics.record_batch(5);
        metrics.record_batch(3);
        let snap = metrics.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batched_requests, 9);
        assert_eq!(snap.coalesced_batches, 2);
        assert_eq!(snap.max_batch_size, 5);
    }

    #[test]
    fn prometheus_rendering_names_every_counter() {
        let metrics = ServeMetrics::default();
        metrics.record_batch(4);
        let text = metrics.snapshot().to_prometheus();
        for name in [
            "paragraph_serve_http_requests_total",
            "paragraph_serve_advise_ok_total",
            "paragraph_serve_advise_rejected_total",
            "paragraph_serve_tune_requests_total",
            "paragraph_serve_tune_ok_total",
            "paragraph_serve_tune_failed_total",
            "paragraph_serve_tune_rejected_total",
            "paragraph_serve_batches_total",
            "paragraph_serve_coalesced_batches_total",
            "paragraph_serve_max_batch_size",
            "paragraph_serve_in_flight",
            "paragraph_serve_analyze_race_pruned_total",
            "paragraph_serve_analyze_rule_total",
            "paragraph_serve_connections_opened_total",
            "paragraph_serve_conn_timeouts_total",
            "paragraph_serve_epoll_wakeups_total",
            "paragraph_serve_open_connections",
            "paragraph_serve_batch_capacity",
            "paragraph_serve_batch_fill_ratio",
            "paragraph_serve_batch_size_bucket",
            "paragraph_serve_batch_size_count",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("paragraph_serve_max_batch_size 4"));
    }

    #[test]
    fn fill_ratio_and_histogram_track_batches() {
        let metrics = ServeMetrics::default();
        metrics.batch_capacity.store(8, Ordering::Relaxed);
        metrics.record_batch(4); // bucket le=4
        metrics.record_batch(8); // bucket le=8
        let snap = metrics.snapshot();
        // 12 requests over 2 batches of capacity 8 → 12/16.
        assert!((snap.batch_fill_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(snap.batch_size_buckets.iter().sum::<u64>(), 2);
        let text = snap.to_prometheus();
        assert!(text.contains("paragraph_serve_batch_fill_ratio 0.75"));
        assert!(text.contains("paragraph_serve_batch_size_bucket{le=\"8\"} 2"));
        assert!(text.contains("paragraph_serve_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("paragraph_serve_batch_size_sum 12"));
        // Empty metrics render a zero ratio, not NaN.
        assert_eq!(MetricsSnapshot::default().batch_fill_ratio(), 0.0);
    }

    #[test]
    fn analysis_accounting_tallies_rules_and_pruned_variants() {
        use pg_analyze::{Diagnostic, Severity};
        let metrics = ServeMetrics::default();
        let diag = |rule: &str| Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            span: None,
            message: "x".to_string(),
        };
        metrics.record_analysis(
            &[
                diag("loop-carried-dependence"),
                diag("unknown-clause"),
                diag("loop-carried-dependence"),
                diag("not-a-registered-rule"), // ignored, never panics
            ],
            3,
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.analyze_race_pruned, 3);
        let count_of = |rule: &str| {
            snap.analyze_rule_counts
                .iter()
                .find(|r| r.rule == rule)
                .map(|r| r.count)
        };
        assert_eq!(count_of("loop-carried-dependence"), Some(2));
        assert_eq!(count_of("unknown-clause"), Some(1));
        assert_eq!(count_of("shared-scalar-race"), Some(0));
        let text = snap.to_prometheus();
        assert!(
            text.contains("paragraph_serve_analyze_rule_total{rule=\"loop-carried-dependence\"} 2")
        );
        assert!(text.contains("paragraph_serve_analyze_race_pruned_total 3"));
    }
}
