//! Minimal SIGTERM/SIGINT hook for graceful drain, without a `libc` crate.
//!
//! The build environment has no crates.io access, so instead of the usual
//! `signal-hook`, this module declares the two libc symbols it needs
//! (`std` already links libc on every unix target) and installs a handler
//! that does the only async-signal-safe thing a drain needs: store into a
//! process-global atomic flag. The serving process polls
//! [`termination_requested`] and runs its ordinary drain path — the
//! handler itself never allocates, locks or calls back into the server.
//!
//! This is the one place in the workspace that uses `unsafe` (the crate is
//! `deny(unsafe_code)` elsewhere): registering a C signal handler is
//! inherently an FFI contract the compiler cannot check.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been received (always false until
/// [`install_termination_handler`] is called, and on non-unix targets).
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Test hook: simulate a received signal.
#[doc(hidden)]
pub fn request_termination() {
    TERMINATION.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{Ordering, TERMINATION};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)` from
        /// libc, which `std` links unconditionally on unix.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation here: one atomic store.
        TERMINATION.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the documented libc API; the handler is a
        // plain `extern "C"` function performing a single atomic store,
        // which POSIX lists as async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Route SIGTERM and SIGINT into [`termination_requested`] instead of the
/// default kill-the-process disposition. No-op on non-unix targets (the
/// flag simply never trips).
pub fn install_termination_handler() {
    #[cfg(unix)]
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_trips_once_requested() {
        // Process-global state: this test only asserts the transition it
        // causes itself.
        install_termination_handler();
        request_termination();
        assert!(termination_requested());
    }
}
