//! A thin, std-only epoll shim: readiness notification for the event loop
//! without a `libc` crate.
//!
//! Like the signal shim in [`crate::signal`], the build environment has no
//! crates.io access, so instead of `mio`/`polling` this module declares the
//! handful of libc symbols it needs (`std` already links libc on every unix
//! target) and wraps them in a safe API: a [`Poller`] (one `epoll` instance),
//! per-fd [`Interest`] registration keyed by a caller-chosen `u64` token, and
//! a [`Waker`] (an `eventfd`) that lets other threads interrupt a blocking
//! [`Poller::wait`].
//!
//! The shim is deliberately level-triggered: the event loop re-arms interest
//! from each connection's state machine, so level semantics ("still readable"
//! fires again) are the forgiving choice — a missed edge can never strand a
//! connection. Everything here is Linux-only (epoll is a Linux API); on other
//! targets [`Poller::new`] returns [`std::io::ErrorKind::Unsupported`] and
//! the serving tier refuses to start rather than silently degrading.

/// What readiness a registered file descriptor is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd can accept more outgoing bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No interest: only error/hangup conditions are reported.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (includes EOF — a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is dead either
    /// way, but the caller should still read to drain any final bytes.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o0004000;

    /// `struct epoll_event` — packed on x86-64, where the kernel ABI has no
    /// padding between `events` and `data`.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// One epoll instance.
    pub struct Poller {
        epfd: i32,
        /// Scratch buffer reused across waits.
        events: Vec<EpollEvent>,
    }

    // SAFETY: the epoll fd is just an integer handle; epoll syscalls are
    // thread-safe. `wait` takes `&mut self` so the scratch buffer is never
    // shared.
    unsafe impl Send for Poller {}

    impl Poller {
        /// Create a fresh epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                events: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: (if interest.readable { EPOLLIN } else { 0 })
                    | (if interest.writable { EPOLLOUT } else { 0 }),
                data: token,
            };
            // SAFETY: `event` outlives the call; the kernel copies it.
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) })?;
            Ok(())
        }

        /// Start watching `fd` under `token`.
        pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Change what `fd` is watched for.
        pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stop watching `fd`. (Closing the fd also deregisters it, but an
        /// explicit removal keeps the kernel set in lockstep with ours.)
        pub fn deregister(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        /// Block until at least one fd is ready or the timeout elapses
        /// (`None` blocks indefinitely). Appends to `out`, returns the
        /// number of events delivered.
        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 0.4ms deadline does not become a busy loop.
                Some(t) => t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            let n = loop {
                // SAFETY: the scratch buffer is valid for `len` entries and
                // exclusively borrowed for the duration of the call.
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.events.as_mut_ptr(),
                        self.events.len() as i32,
                        timeout_ms,
                    )
                };
                if ret >= 0 {
                    break ret as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR (e.g. the SIGTERM the drain is waiting for): retry
                // with a zero timeout so the caller re-checks its flags.
                if timeout_ms != 0 {
                    break 0;
                }
            };
            for raw in &self.events[..n] {
                let (events, data) = (raw.events, raw.data);
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd exactly once.
            unsafe { close(self.epfd) };
        }
    }

    /// Cross-thread wakeup for a blocked [`Poller::wait`], backed by an
    /// `eventfd` registered in the epoll set like any connection.
    #[derive(Debug)]
    pub struct Waker {
        fd: i32,
    }

    // SAFETY: eventfd reads/writes are atomic 8-byte syscalls, safe from
    // any thread.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// Create a fresh eventfd-backed waker.
        pub fn new() -> io::Result<Waker> {
            // SAFETY: plain syscall, no pointers.
            let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Waker { fd })
        }

        /// The fd to register with the poller.
        pub fn fd(&self) -> i32 {
            self.fd
        }

        /// Make the poller's next (or current) wait return.
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writing 8 bytes from a valid stack slot; an EAGAIN
            // (counter saturated) still leaves the eventfd readable, which
            // is all a wakeup needs.
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Consume pending wakeups so level-triggered polling goes back to
        /// sleep.
        pub fn drain(&self) {
            let mut buf = 0u64;
            // SAFETY: reading 8 bytes into a valid stack slot; EAGAIN just
            // means the counter was already zero.
            unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd exactly once.
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the pg-serve event loop requires Linux (epoll)",
        )
    }

    /// Stub poller: construction fails on non-Linux targets.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }
        pub fn register(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&mut self, _out: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub waker: construction fails on non-Linux targets.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            Err(unsupported())
        }
        pub fn fd(&self) -> i32 {
            -1
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }
}

pub use imp::{Poller, Waker};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn listener_readiness_is_reported_under_its_token() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        // Nothing pending: a zero timeout returns no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending accept not reported: {events:?}"
        );
    }

    #[test]
    fn waker_interrupts_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 1, Interest::READ).unwrap();
        waker.wake();
        waker.wake(); // coalesces: still one readable eventfd
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        waker.drain();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != 1),
            "drained waker still readable: {events:?}"
        );
    }

    #[test]
    fn write_readiness_and_interest_changes() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        poller
            .register(client.as_raw_fd(), 3, Interest::WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Downgrade to no interest: the still-writable socket goes quiet.
        poller
            .modify(client.as_raw_fd(), 3, Interest::NONE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 3));

        // Back to read interest: bytes from the peer wake us again.
        poller
            .modify(client.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        (&server_end).write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        poller.deregister(client.as_raw_fd()).unwrap();
    }
}
