//! The HTTP server: event-driven I/O, a fixed worker pool, routing,
//! admission control and graceful drain.
//!
//! Threading model: **one event thread** owns the listener and every
//! connection socket, multiplexed over epoll (see [`crate::event`] and
//! [`crate::poll`]); a **fixed pool** of [`ServeConfig::workers`] threads
//! executes parsed requests; the micro-batcher's scheduler thread turns
//! concurrent `/advise` work into few engine calls. Connection count and
//! thread count are fully decoupled — thousands of keep-alive sockets are
//! a few kilobytes of buffer each, not a thread each — and `/advise`
//! handlers no longer block a thread per request: the worker submits to
//! the [`MicroBatcher`] asynchronously and moves on, so the coalesced
//! batch depth is bounded by admitted traffic, not by pool size.
//!
//! Admission control is layered, earliest-first:
//!
//! 1. **Connection bound** — at [`ServeConfig::max_connections`] open
//!    sockets, new connections are shed with a `429` written straight from
//!    the accept path, before a single byte is read.
//! 2. **In-flight bound** — a parsed POST (`/advise`, `/tune`) past
//!    [`ServeConfig::max_inflight`] is answered `429 Retry-After` from the
//!    event thread at dispatch, before JSON parsing and before any worker
//!    or engine time is spent.
//! 3. **Batcher queue depth** — the batcher's own defensive bound, refused
//!    as `429` through the same responder path.
//!
//! Shutdown is drain-then-close: the listener deregisters, idle
//! connections close immediately, requests already dispatched finish and
//! flush their responses, and every thread has exited before
//! [`Server::shutdown`] returns.

use crate::batcher::{BatchConfig, MicroBatcher};
use crate::event::EventLoop;
use crate::http::{Request, Response};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::poll::{Poller, Waker};
use crate::ServeError;
use pg_engine::{AdviseRequest, Engine, EngineError};
use pg_obs::{obs, FinishedTrace, Stage, TraceHandle, TraceTree};
use pg_tune::{TuneEngine, TuneError, TuneRequest};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Most open connections; beyond it new connections are shed with an
    /// immediate 429 (each open connection costs buffers, not a thread).
    pub max_connections: usize,
    /// Most POST requests in flight before admission control answers 429.
    pub max_inflight: usize,
    /// Request-executing worker threads (the event thread and the batcher
    /// scheduler are separate and always one each).
    pub workers: usize,
    /// Micro-batcher flush policy.
    pub batch: BatchConfig,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Idle keep-alive connections are closed after this long without a
    /// request.
    pub idle_timeout: Duration,
    /// A connection that has *started* a request (sent at least one byte
    /// of it) must deliver the rest within this long or be closed — the
    /// slow-loris bound. Also caps how long a response write may stall.
    pub header_read_timeout: Duration,
    /// Server-side ceiling on a `/tune` request's `max_evaluations`: the
    /// wire-supplied budget is clamped to it. A tuning run's work is
    /// client-controlled (budget × sweep axes), and an uncapped request
    /// could hold an admission slot for hours and stall the drain; the
    /// clamp bounds every run to a predictable worst case.
    pub max_tune_evaluations: u64,
    /// Server-side ceiling on a `/tune` request's `max_generations`
    /// (backend batches), clamped like `max_tune_evaluations`.
    pub max_tune_generations: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 8192,
            max_inflight: 256,
            workers: 4,
            batch: BatchConfig::default(),
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(5),
            header_read_timeout: Duration::from_secs(10),
            max_tune_evaluations: 65_536,
            max_tune_generations: 1024,
        }
    }
}

/// A parsed request handed from the event thread to the worker pool.
/// `slot` marks requests holding an in-flight admission slot (released
/// when their completion is queued).
pub(crate) struct WorkItem {
    pub(crate) token: u64,
    pub(crate) request: Request,
    pub(crate) slot: bool,
    /// The request's trace (armed at accept on the event thread); worker
    /// and batcher stages parent their spans on its root.
    pub(crate) trace: TraceHandle,
}

/// A finished response travelling back to the event thread.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) response: Response,
    pub(crate) close: bool,
}

pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) batcher: MicroBatcher,
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) draining: AtomicBool,
    /// Interrupts `epoll_wait` when a completion is queued or a drain
    /// begins.
    pub(crate) waker: Waker,
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) max_inflight: usize,
    pub(crate) max_body_bytes: usize,
    pub(crate) idle_timeout: Duration,
    pub(crate) header_read_timeout: Duration,
    pub(crate) max_tune_evaluations: u64,
    pub(crate) max_tune_generations: u64,
}

impl Shared {
    /// The single completion point: release the admission slot (if held),
    /// queue the response for the event thread, wake it.
    pub(crate) fn complete(&self, token: u64, response: Response, close: bool, slot: bool) {
        if slot {
            self.metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        self.completions
            .lock()
            .expect("completion queue poisoned")
            .push(Completion {
                token,
                response,
                close,
            });
        self.waker.wake();
    }
}

/// A running server. Keep the handle; [`Server::shutdown`] drains and
/// joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving a shared engine.
    pub fn start(engine: Arc<Engine>, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = MicroBatcher::start(Arc::clone(&engine), config.batch, Arc::clone(&metrics));
        let shared = Arc::new(Shared {
            engine,
            batcher,
            metrics,
            draining: AtomicBool::new(false),
            waker,
            completions: Mutex::new(Vec::new()),
            max_inflight: config.max_inflight.max(1),
            max_body_bytes: config.max_body_bytes,
            idle_timeout: config.idle_timeout,
            header_read_timeout: config.header_read_timeout,
            max_tune_evaluations: config.max_tune_evaluations.max(1),
            max_tune_generations: config.max_tune_generations.max(1),
        });

        let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let work_rx = Arc::clone(&work_rx);
                std::thread::Builder::new()
                    .name(format!("pg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &work_rx))
                    .expect("spawning a worker thread")
            })
            .collect();

        let event_loop = EventLoop::new(
            Arc::clone(&shared),
            poller,
            listener,
            work_tx,
            config.max_connections.max(1),
        )?;
        let event = std::thread::Builder::new()
            .name("pg-serve-event".into())
            .spawn(move || event_loop.run())
            .expect("spawning the event thread");

        pg_obs::info!(
            "pg-serve listening",
            addr = addr,
            workers = config.workers.max(1),
            max_connections = config.max_connections.max(1),
            max_inflight = config.max_inflight.max(1)
        );
        Ok(Server {
            addr,
            shared,
            event: Some(event),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Total serving threads: the event thread plus the worker pool (the
    /// batcher scheduler is one more). The number that bounds concurrency
    /// for *thousands* of connections.
    pub fn io_and_worker_threads(&self) -> usize {
        1 + self.workers.len()
    }

    /// Drain and stop: stop accepting, finish dispatched requests, flush
    /// the batcher, join every thread. Returns the final counters.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        // The event thread deregisters the listener, closes idle
        // connections, finishes in-flight responses, and exits with the
        // connection table empty — dropping the only work sender.
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        // Workers drain whatever the channel still buffers, then see the
        // disconnect and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Join the batcher's scheduler from here rather than from whichever
        // thread drops the last `Arc<Shared>`: an in-flight responder on
        // the scheduler thread can itself hold the last reference, and a
        // drop-triggered join there would be a self-join. After this the
        // snapshot includes every batch.
        self.shared.batcher.stop();
        let snapshot = self.shared.metrics.snapshot();
        pg_obs::info!(
            "pg-serve drained",
            requests = snapshot.http_requests,
            advise_ok = snapshot.advise_ok,
            tune_ok = snapshot.tune_ok,
            batches = snapshot.batches
        );
        drop(self);
        snapshot
    }
}

/// One pool thread: pull parsed requests, execute, complete. The receiver
/// mutex is held only across the `recv` — execution is concurrent.
fn worker_loop(shared: &Arc<Shared>, work_rx: &Mutex<mpsc::Receiver<WorkItem>>) {
    loop {
        let item = {
            let rx = work_rx.lock().expect("work queue poisoned");
            match rx.recv() {
                Ok(item) => item,
                Err(_) => return, // event thread gone and queue drained
            }
        };
        route(shared, item);
    }
}

fn route(shared: &Arc<Shared>, item: WorkItem) {
    let WorkItem {
        token,
        request,
        slot,
        trace,
    } = item;
    let close = !request.keep_alive() || shared.draining.load(Ordering::SeqCst);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => shared.complete(token, healthz(shared), close, slot),
        ("GET", "/metrics") => {
            // Serving counters first, then the per-stage duration
            // histograms the observability hub collected across every tier.
            let mut text = shared.metrics.snapshot().to_prometheus();
            text.push_str(&crate::metrics::stage_histograms_to_prometheus(
                &obs().stage_snapshot(),
            ));
            shared.complete(token, Response::text(200, text), close, slot);
        }
        ("GET", "/debug/traces") => shared.complete(token, debug_traces(), close, slot),
        ("POST", "/advise") => advise(shared, token, &request.body, close, trace),
        ("POST", "/tune") => {
            let response = tune(shared, &request.body, &trace);
            shared.complete(token, response, close, slot);
        }
        (method, "/healthz" | "/metrics" | "/debug/traces" | "/advise" | "/tune") => shared
            .complete(
                token,
                Response::error(405, &format!("method {method} not allowed")),
                close,
                slot,
            ),
        (_, path) => shared.complete(
            token,
            Response::error(404, &format!("no route for `{path}`")),
            close,
            slot,
        ),
    }
}

/// `GET /debug/traces`: the recorder's most recent traces (newest first)
/// as JSON span trees — the flight-recorder view of what the sampling
/// policy kept.
fn debug_traces() -> Response {
    let trees: Vec<TraceTree> = obs().traces().iter().map(FinishedTrace::tree).collect();
    Response::json(
        200,
        serde_json::to_string(&trees).unwrap_or_else(|_| "[]".into()),
    )
}

fn healthz(shared: &Shared) -> Response {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let payload = serde::Value::Object(vec![
        ("status".into(), serde::Value::Str(status.into())),
        (
            "backend".into(),
            serde::Value::Str(shared.engine.backend_name().into()),
        ),
        (
            "platform".into(),
            serde::Value::Str(shared.engine.platform().slug().into()),
        ),
    ]);
    Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_else(|_| "{}".into()),
    )
}

/// The body-parse preamble both POST routes share (admission already ran
/// at dispatch, on the event thread): refuse 503 while draining, then
/// parse the JSON body (400s name the expected `payload` type).
fn parse_body<T: for<'de> serde::Deserialize<'de>>(
    shared: &Shared,
    body: &[u8],
    payload: &str,
) -> Result<T, Response> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(Response::error(503, "server is draining"));
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            shared
                .metrics
                .http_bad_requests
                .fetch_add(1, Ordering::Relaxed);
            return Err(Response::error(400, "request body is not UTF-8"));
        }
    };
    match serde_json::from_str(text) {
        Ok(request) => Ok(request),
        Err(error) => {
            shared
                .metrics
                .http_bad_requests
                .fetch_add(1, Ordering::Relaxed);
            Err(Response::error(400, &format!("invalid {payload}: {error}")))
        }
    }
}

/// `POST /advise`: parse, submit to the micro-batcher, return. The
/// completion happens from the batcher's responder once the batch executes
/// — the worker thread is free the moment the submit queues, which is why
/// batch depth is bounded by admitted traffic rather than pool size.
fn advise(shared: &Arc<Shared>, token: u64, body: &[u8], close: bool, trace: TraceHandle) {
    let request: AdviseRequest = match parse_body(shared, body, "AdviseRequest") {
        Ok(request) => request,
        Err(response) => return shared.complete(token, response, close, true),
    };
    let responder_shared = Arc::clone(shared);
    let responder_trace = trace.clone();
    shared.batcher.submit(
        request,
        trace,
        Box::new(move |outcome| {
            let shared = responder_shared;
            let trace = responder_trace;
            let response = match outcome {
                Ok(report) => {
                    let span = obs().span(&trace, Stage::Serialize, trace.root());
                    let serialized = serde_json::to_string(&report);
                    span.finish();
                    match serialized {
                        Ok(json) => {
                            shared.metrics.advise_ok.fetch_add(1, Ordering::Relaxed);
                            shared.metrics.record_analysis(
                                &report.diagnostics,
                                report.race_pruned.len() as u64,
                            );
                            Response::json(200, json)
                        }
                        Err(error) => {
                            shared.metrics.advise_failed.fetch_add(1, Ordering::Relaxed);
                            pg_obs::error!("advise report serialization failed", error = error);
                            Response::error(500, &format!("serializing report: {error}"))
                        }
                    }
                }
                Err(error) => match &error {
                    ServeError::Overloaded { .. } => {
                        shared
                            .metrics
                            .advise_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        pg_obs::warn!("advise rejected by batcher backpressure", error = error);
                        Response::error(429, &error.to_string()).with_header("Retry-After", "1")
                    }
                    // Raw kernel source the frontend refused — a syntax
                    // error or a blown parse budget. Still a semantic 422,
                    // but with machine-readable diagnostics and its own
                    // counter: at the trust boundary, "client sent garbage"
                    // and "client sent a resource bomb" must be observable
                    // apart from ordinary engine failures.
                    ServeError::Engine(EngineError::Frontend(frontend)) => {
                        shared.metrics.advise_failed.fetch_add(1, Ordering::Relaxed);
                        shared
                            .metrics
                            .parse_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        pg_obs::debug!("advise source rejected by frontend", error = error);
                        frontend_rejection(frontend)
                    }
                    other => {
                        let status = match other {
                            ServeError::ShuttingDown => 503,
                            ServeError::Engine(EngineError::BackendUnavailable(_)) => 503,
                            // The request was well-formed HTTP+JSON but the
                            // engine cannot satisfy it (unknown kernel, bad
                            // source, empty budget): the client's fault, a
                            // semantic 422.
                            _ => 422,
                        };
                        shared.metrics.advise_failed.fetch_add(1, Ordering::Relaxed);
                        pg_obs::debug!("advise failed", status = status, error = error);
                        Response::error(status, &error.to_string())
                    }
                },
            };
            shared.complete(token, response, close, true);
        }),
    );
}

/// The 422 body for a request whose raw kernel source the frontend
/// rejected: the typed diagnostic (stable kind name, 1-based location,
/// and — for budget violations — the cap that was exhausted) lets a
/// client distinguish a typo from a parse bomb without string matching.
fn frontend_rejection(error: &pg_engine::FrontendError) -> Response {
    use serde::Value;
    let mut fields = vec![
        ("error".to_string(), Value::Str(error.to_string())),
        (
            "kind".to_string(),
            Value::Str(error.kind.name().to_string()),
        ),
        (
            "line".to_string(),
            Value::UInt(u64::from(error.location.line)),
        ),
        (
            "column".to_string(),
            Value::UInt(u64::from(error.location.column)),
        ),
        (
            "limit_exceeded".to_string(),
            Value::Bool(error.kind.is_limit()),
        ),
    ];
    if let Some(limit) = error.kind.limit() {
        fields.push(("limit".to_string(), Value::UInt(limit as u64)));
    }
    let payload = serde_json::to_string(&Value::Object(fields))
        .unwrap_or_else(|_| "{\"error\":\"unrenderable frontend rejection\"}".to_string());
    Response::json(422, payload)
}

/// `POST /tune`: run a budgeted variant-space search with the shared engine
/// as cost model.
///
/// Admission control is the same in-flight gauge `/advise` uses (checked at
/// dispatch) — a tuning run is strictly heavier than an advise call (many
/// frontier batches), so it must not be able to sneak past the load
/// shedding. The micro-batcher is *not* in this path: the tuner already
/// batches internally (each search generation is one `advise_many`, i.e.
/// one backend `predict_batch`). It blocks its worker thread for the run —
/// bounded by the budget clamp below.
fn tune(shared: &Shared, body: &[u8], trace: &TraceHandle) -> Response {
    let mut request: TuneRequest = match parse_body(shared, body, "TuneRequest") {
        Ok(request) => request,
        Err(response) => return response,
    };
    // Clamp the client-supplied budget to the server's ceiling: search
    // work is otherwise unbounded from the wire, and an admission slot
    // must not be holdable for hours (the report's accounting shows the
    // clamped budget the run actually got).
    request.limits.max_evaluations = request
        .limits
        .max_evaluations
        .min(shared.max_tune_evaluations);
    request.limits.max_generations = request
        .limits
        .max_generations
        .min(shared.max_tune_generations);
    // One span covers the whole search; its generations are attributed
    // individually to the `tune_generation` histogram by the evaluator.
    let search = obs().trace_span(trace, Stage::TuneGeneration, trace.root());
    let outcome = shared.engine.tune(&request);
    search.finish();
    match outcome {
        Ok(report) => {
            let span = obs().span(trace, Stage::Serialize, trace.root());
            let serialized = serde_json::to_string(&report);
            span.finish();
            match serialized {
                Ok(json) => {
                    shared.metrics.tune_ok.fetch_add(1, Ordering::Relaxed);
                    shared
                        .metrics
                        .record_analysis(&[], report.space.race_pruned);
                    Response::json(200, json)
                }
                Err(error) => {
                    shared.metrics.tune_failed.fetch_add(1, Ordering::Relaxed);
                    pg_obs::error!("tune report serialization failed", error = error);
                    Response::error(500, &format!("serializing tune report: {error}"))
                }
            }
        }
        Err(error) => {
            let status = match &error {
                TuneError::Engine(EngineError::BackendUnavailable(_)) => 503,
                // Well-formed HTTP+JSON the tuner cannot satisfy (unknown
                // kernel, empty budget, starved evaluation budget): a
                // semantic 422, mirroring /advise.
                _ => 422,
            };
            shared.metrics.tune_failed.fetch_add(1, Ordering::Relaxed);
            pg_obs::debug!("tune failed", status = status, error = error);
            Response::error(status, &error.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_engine::AdviseReport;
    use pg_perfsim::Platform;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn start(config: ServeConfig) -> (Server, Arc<Engine>) {
        let engine = Arc::new(Engine::builder().platform(Platform::SummitV100).build());
        let server = Server::start(Arc::clone(&engine), config).unwrap();
        (server, engine)
    }

    /// One request over a fresh connection; returns (status, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn post_advise(addr: SocketAddr, json: &str) -> (u16, String) {
        roundtrip(
            addr,
            &format!(
                "POST /advise HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            ),
        )
    }

    #[test]
    fn healthz_reports_backend_and_platform() {
        let (server, _) = start(ServeConfig::default());
        let (status, body) = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"backend\":\"simulator\""));
        assert!(body.contains("\"platform\":\"summit-v100\""));
        server.shutdown();
    }

    #[test]
    fn advise_round_trip_matches_direct_engine_call() {
        let (server, engine) = start(ServeConfig::default());
        let request = AdviseRequest::catalog("MM/matmul");
        let json = serde_json::to_string(&request).unwrap();
        let (status, body) = post_advise(server.addr(), &json);
        assert_eq!(status, 200, "body: {body}");
        let served: AdviseReport = serde_json::from_str(&body).unwrap();
        let direct = engine.advise(&request).unwrap();
        assert_eq!(served.rankings, direct.rankings);
        assert_eq!(served.failures, direct.failures);
        assert_eq!(served.kernel, direct.kernel);
        assert_eq!(served.backend, "simulator");
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_ok, 1);
        assert_eq!(metrics.in_flight, 0);
    }

    #[test]
    fn unknown_routes_bad_json_and_unknown_kernels_map_to_statuses() {
        let (server, _) = start(ServeConfig::default());
        let addr = server.addr();
        let (status, _) = roundtrip(
            addr,
            "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 404);
        let (status, _) = roundtrip(
            addr,
            "DELETE /advise HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        let (status, body) = post_advise(addr, "{not json");
        assert_eq!(status, 400, "body: {body}");
        let (status, body) = post_advise(
            addr,
            "{\"kernel\":{\"Catalog\":\"Nope/x\"},\"sizes\":null,\"budget\":\"PlatformDefault\"}",
        );
        assert_eq!(status, 422, "body: {body}");
        assert!(body.contains("unknown catalogue kernel"));
        let metrics = server.shutdown();
        assert_eq!(metrics.http_bad_requests, 1);
        assert_eq!(metrics.advise_failed, 1);
    }

    #[test]
    fn tune_round_trip_matches_direct_engine_tune() {
        use pg_tune::{StrategySpec, TuneReport, TuneRequest};
        let (server, engine) = start(ServeConfig::default());
        let request = TuneRequest::catalog("MM/matmul").with_strategy(StrategySpec::Beam {
            width: 2,
            patience: 1,
        });
        let json = serde_json::to_string(&request).unwrap();
        let (status, body) = roundtrip(
            server.addr(),
            &format!(
                "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            ),
        );
        assert_eq!(status, 200, "body: {body}");
        let served: TuneReport = serde_json::from_str(&body).unwrap();
        let direct = engine.tune(&request).unwrap();
        assert_eq!(served.best, direct.best);
        assert_eq!(served.trajectory, direct.trajectory);
        assert_eq!(served.space, direct.space);
        let metrics = server.shutdown();
        assert_eq!(metrics.tune_requests, 1);
        assert_eq!(metrics.tune_ok, 1);
        assert_eq!(metrics.advise_ok, 0);
        assert_eq!(metrics.in_flight, 0);
    }

    #[test]
    fn tune_budgets_are_clamped_to_the_server_ceiling() {
        use pg_tune::{StrategySpec, TuneReport, TuneRequest};
        let (server, _) = start(ServeConfig {
            max_tune_evaluations: 8,
            max_tune_generations: 1,
            ..ServeConfig::default()
        });
        // The client asks for the default 4096-evaluation budget; the
        // server must cut the run to its own ceiling.
        let request = TuneRequest::catalog("MM/matmul").with_strategy(StrategySpec::Exhaustive);
        let json = serde_json::to_string(&request).unwrap();
        let (status, body) = roundtrip(
            server.addr(),
            &format!(
                "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            ),
        );
        assert_eq!(status, 200, "body: {body}");
        let served: TuneReport = serde_json::from_str(&body).unwrap();
        assert!(
            served.space.evaluated <= 8,
            "server ceiling ignored: {:?}",
            served.space
        );
        assert!(served.generations <= 1);
        server.shutdown();
    }

    #[test]
    fn tune_maps_bad_requests_and_unknown_kernels_to_statuses() {
        use pg_tune::TuneRequest;
        let (server, _) = start(ServeConfig::default());
        let addr = server.addr();
        let post = |json: &str| {
            roundtrip(
                addr,
                &format!(
                    "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{json}",
                    json.len()
                ),
            )
        };
        let (status, _) = post("{not json");
        assert_eq!(status, 400);
        let json = serde_json::to_string(&TuneRequest::catalog("Nope/none")).unwrap();
        let (status, body) = post(&json);
        assert_eq!(status, 422, "body: {body}");
        assert!(body.contains("unknown catalogue kernel"));
        let (status, _) = roundtrip(
            addr,
            "DELETE /tune HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        let metrics = server.shutdown();
        assert_eq!(metrics.tune_requests, 2);
        assert_eq!(metrics.tune_ok, 0);
        assert_eq!(metrics.tune_failed, 1);
        assert_eq!(metrics.http_bad_requests, 1);
    }

    #[test]
    fn tune_admission_control_rejects_with_retry_after() {
        use pg_tune::TuneRequest;
        let (server, _) = start(ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        });
        server
            .shared
            .metrics
            .in_flight
            .fetch_add(1, Ordering::SeqCst);
        let json = serde_json::to_string(&TuneRequest::catalog("MM/matmul")).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{json}",
                    json.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        server
            .shared
            .metrics
            .in_flight
            .fetch_sub(1, Ordering::SeqCst);
        let metrics = server.shutdown();
        assert_eq!(metrics.tune_rejected, 1);
        assert_eq!(metrics.tune_ok, 0);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (server, _) = start(ServeConfig::default());
        let json = serde_json::to_string(&AdviseRequest::catalog("MV/matvec")).unwrap();
        post_advise(server.addr(), &json);
        let (status, body) = roundtrip(
            server.addr(),
            "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("paragraph_serve_advise_ok_total 1"));
        assert!(body.contains("paragraph_serve_batches_total 1"));
        assert!(body.contains("paragraph_serve_batch_fill_ratio"));
        assert!(body.contains("paragraph_serve_open_connections 1"));
        assert!(body.contains("paragraph_serve_batch_oldest_wait_seconds"));
        // The stage histograms ride along on the same endpoint; the hub is
        // process-global, so only assert family presence (counts belong to
        // whichever tests ran first).
        assert!(body.contains("# TYPE paragraph_stage_duration_seconds histogram"));
        assert!(body.contains("paragraph_stage_duration_seconds_bucket{stage=\"predict\""));
        server.shutdown();
    }

    /// Tentpole acceptance: a single `/advise` over HTTP yields a
    /// retrievable trace at `/debug/traces` whose span tree covers the
    /// pipeline from accept to write.
    #[test]
    fn debug_traces_endpoint_returns_span_trees() {
        let (server, _) = start(ServeConfig::default());
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let (status, body) = post_advise(server.addr(), &json);
        assert_eq!(status, 200, "body: {body}");
        let (status, body) = roundtrip(
            server.addr(),
            "GET /debug/traces HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        // The default sampling policy (PARAGRAPH_OBS_SAMPLE=1) keeps every
        // trace, so the advise request must be retrievable with its full
        // stage ladder. The recorder is process-global: other tests'
        // traces may interleave, so assert on content, not on count.
        for stage in [
            "\"stage\":\"request\"",
            "\"stage\":\"accept\"",
            "\"stage\":\"parse\"",
            "\"stage\":\"batch_wait\"",
            "\"stage\":\"analyze\"",
            "\"stage\":\"predict\"",
            "\"stage\":\"serialize\"",
            "\"stage\":\"write\"",
        ] {
            assert!(body.contains(stage), "missing {stage} in:\n{body}");
        }
        assert!(body.contains("\"trace_id\""));
        assert!(body.contains("\"children\""));
        let (status, _) = roundtrip(
            server.addr(),
            "DELETE /debug/traces HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_with_retry_after() {
        let (server, _) = start(ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        });
        // Saturate the single admission slot by holding the gauge
        // ourselves, then observe the rejection.
        server
            .shared
            .metrics
            .in_flight
            .fetch_add(1, Ordering::SeqCst);
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /advise HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{json}",
                    json.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        server
            .shared
            .metrics
            .in_flight
            .fetch_sub(1, Ordering::SeqCst);
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_rejected, 1);
        assert_eq!(metrics.advise_ok, 0);
    }

    #[test]
    fn slow_advise_saturates_admission_for_real() {
        // max_inflight 2 with many connections allowed: flood with slow
        // one-per-batch requests and verify at least one real 429 under
        // load.
        let (server, _) = start(ServeConfig {
            max_inflight: 2,
            batch: BatchConfig {
                max_batch: 1,
                max_wait: Duration::from_millis(20),
                queue_depth: 1024,
            },
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let clients: Vec<_> = (0..12)
            .map(|_| {
                let json = json.clone();
                std::thread::spawn(move || post_advise(addr, &json).0)
            })
            .collect();
        let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        assert!(statuses.iter().all(|s| *s == 200 || *s == 429));
        assert!(statuses.contains(&200));
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_ok + metrics.advise_rejected, 12);
        // With 12 concurrent one-per-batch requests against 2 admission
        // slots, overload must actually shed.
        assert!(
            metrics.advise_rejected > 0,
            "admission control never fired: {metrics:?}"
        );
    }

    #[test]
    fn connection_limit_sheds_at_accept() {
        let (server, _) = start(ServeConfig {
            max_connections: 1,
            idle_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        // Occupy the single slot with a keep-alive connection...
        let mut held = TcpStream::connect(addr).unwrap();
        held.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 12];
        held.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"HTTP/1.1 200");
        // ...and watch the next connection get shed without sending a byte.
        let mut shed = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        shed.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        drop(held);
        let metrics = server.shutdown();
        assert_eq!(metrics.connections_shed, 1);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (server, _) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let mut header = Vec::new();
            let mut byte = [0u8; 1];
            while !header.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).unwrap();
                header.push(byte[0]);
            }
            let head = String::from_utf8(header).unwrap();
            assert!(head.starts_with("HTTP/1.1 200"));
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).unwrap();
        }
        // Close the client side so the drain below does not have to wait
        // out the idle timeout.
        drop(stream);
        let metrics = server.shutdown();
        assert_eq!(metrics.http_requests, 3);
        assert_eq!(metrics.connections_opened, 1);
    }

    #[test]
    fn shutdown_drains_and_leaves_no_thread_behind() {
        let (server, engine) = start(ServeConfig::default());
        let addr = server.addr();
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let json = json.clone();
                std::thread::spawn(move || post_advise(addr, &json).0)
            })
            .collect();
        for client in clients {
            assert_eq!(client.join().unwrap(), 200);
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_ok, 4);
        assert_eq!(metrics.in_flight, 0);
        // The port is released: a fresh server can bind the same address.
        let listener = TcpListener::bind(addr);
        assert!(listener.is_ok(), "address still held after shutdown");
        drop(engine);
    }
}
