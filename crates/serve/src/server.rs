//! The HTTP server: accept loop, per-connection threads, routing,
//! admission control and graceful drain.
//!
//! Threading model: the accept thread spawns one thread per connection
//! (sequential keep-alive — one request at a time per connection), bounded
//! by [`ServeConfig::max_connections`]. At the bound, new connections are
//! shed immediately with a `429` written straight from the accept loop —
//! an idle or slow client can hold at most its own thread, never starve
//! other connections. `/advise` handlers block on the shared
//! [`MicroBatcher`], so the prediction work of many connections coalesces
//! into few engine calls regardless of how many connection threads exist.
//!
//! Admission control is layered: the connection bound caps sockets (and
//! sheds before reading a single byte), and [`ServeConfig::max_inflight`]
//! caps concurrent `/advise` work (checked after the HTTP read, before the
//! JSON body is parsed into a request) — under overload, shedding early
//! keeps latency sane for the admitted.
//!
//! Shutdown is drain-then-close: new connections stop being accepted,
//! requests already admitted finish (the batcher flushes its queue), and
//! every connection thread has exited before [`Server::shutdown`] returns
//! (an idle keep-alive client can delay that by at most
//! [`ServeConfig::idle_timeout`]).

use crate::batcher::{BatchConfig, MicroBatcher};
use crate::http::{read_request, ParseError, Request, Response};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::ServeError;
use pg_engine::{AdviseRequest, Engine, EngineError};
use pg_tune::{TuneEngine, TuneError, TuneRequest};
use std::io::BufReader;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Most open connections (each owns one thread); beyond it new
    /// connections are shed with an immediate 429.
    pub max_connections: usize,
    /// Most `/advise` requests in flight before admission control answers
    /// 429.
    pub max_inflight: usize,
    /// Micro-batcher flush policy.
    pub batch: BatchConfig,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Idle keep-alive connections are closed after this long without a
    /// request (also bounds how long a drain can wait on an idle client).
    pub idle_timeout: Duration,
    /// Server-side ceiling on a `/tune` request's `max_evaluations`: the
    /// wire-supplied budget is clamped to it. A tuning run's work is
    /// client-controlled (budget × sweep axes), and an uncapped request
    /// could hold an admission slot for hours and stall the drain; the
    /// clamp bounds every run to a predictable worst case.
    pub max_tune_evaluations: u64,
    /// Server-side ceiling on a `/tune` request's `max_generations`
    /// (backend batches), clamped like `max_tune_evaluations`.
    pub max_tune_generations: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            max_inflight: 256,
            batch: BatchConfig::default(),
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(5),
            max_tune_evaluations: 65_536,
            max_tune_generations: 1024,
        }
    }
}

/// Count of live connection threads; shutdown waits for it to reach zero.
#[derive(Default)]
struct ConnGauge {
    count: Mutex<usize>,
    all_exited: Condvar,
}

struct Shared {
    engine: Arc<Engine>,
    batcher: MicroBatcher,
    metrics: Arc<ServeMetrics>,
    draining: AtomicBool,
    connections: ConnGauge,
    max_inflight: usize,
    max_body_bytes: usize,
    idle_timeout: Duration,
    max_tune_evaluations: u64,
    max_tune_generations: u64,
}

/// A running server. Keep the handle; [`Server::shutdown`] drains and
/// joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving a shared engine.
    pub fn start(engine: Arc<Engine>, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = MicroBatcher::start(Arc::clone(&engine), config.batch, Arc::clone(&metrics));
        let shared = Arc::new(Shared {
            engine,
            batcher,
            metrics,
            draining: AtomicBool::new(false),
            connections: ConnGauge::default(),
            max_inflight: config.max_inflight.max(1),
            max_body_bytes: config.max_body_bytes,
            idle_timeout: config.idle_timeout,
            max_tune_evaluations: config.max_tune_evaluations.max(1),
            max_tune_generations: config.max_tune_generations.max(1),
        });

        let max_connections = config.max_connections.max(1);
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("pg-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(mut stream) = stream else { continue };
                    // Connection-level shedding: at the bound, answer 429
                    // from the accept loop without reading a byte, so a
                    // flood cannot accumulate sockets or threads.
                    {
                        let mut count = accept_shared
                            .connections
                            .count
                            .lock()
                            .expect("connection gauge poisoned");
                        if *count >= max_connections {
                            drop(count);
                            accept_shared
                                .metrics
                                .connections_shed
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = Response::error(429, "connection limit reached")
                                .with_header("Retry-After", "1")
                                .write_to(&mut stream, true);
                            continue;
                        }
                        *count += 1;
                    }
                    let conn_shared = Arc::clone(&accept_shared);
                    let spawned = std::thread::Builder::new()
                        .name("pg-serve-conn".into())
                        .spawn(move || {
                            // Decrements even if the handler panics.
                            let _guard = ConnExit(&conn_shared.connections);
                            handle_connection(&conn_shared, stream);
                        });
                    if spawned.is_err() {
                        // Spawn failure: roll the registration back.
                        ConnExit(&accept_shared.connections);
                    }
                }
            })
            .expect("spawning the accept thread");

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Drain and stop: stop accepting, finish admitted requests, flush the
    /// batcher, join every thread. Returns the final counters.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection. A wildcard
        // bind address is not connectable on every platform; aim the wake
        // at the loopback of the same family instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Wait for every connection thread to exit (bounded by the idle
        // timeout for clients that are holding a silent keep-alive open).
        let mut count = self
            .shared
            .connections
            .count
            .lock()
            .expect("connection gauge poisoned");
        while *count > 0 {
            count = self
                .shared
                .connections
                .all_exited
                .wait(count)
                .expect("connection gauge poisoned");
        }
        drop(count);
        let snapshot = self.shared.metrics.snapshot();
        // This handle holds the last `Arc<Shared>` once the threads are
        // done; dropping it drains and joins the batcher's scheduler.
        drop(self);
        snapshot
    }
}

/// RAII decrement of the connection gauge (notifies a waiting drain).
struct ConnExit<'a>(&'a ConnGauge);

impl Drop for ConnExit<'_> {
    fn drop(&mut self) {
        let mut count = self.0.count.lock().expect("connection gauge poisoned");
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.0.all_exited.notify_all();
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, shared.max_body_bytes, &mut writer) {
            Ok(None) | Err(ParseError::Io(_)) => return, // closed or timed out
            Ok(Some(request)) => request,
            Err(ParseError::Malformed(detail)) => {
                shared
                    .metrics
                    .http_bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(400, &detail).write_to(&mut writer, true);
                return;
            }
            Err(ParseError::BodyTooLarge { declared, limit }) => {
                shared
                    .metrics
                    .http_bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(
                    413,
                    &format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                )
                .write_to(&mut writer, true);
                return;
            }
        };
        shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let response = route(shared, &request);
        // Drain closes connections after the in-flight response.
        let close = !request.keep_alive() || shared.draining.load(Ordering::SeqCst);
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => Response::text(200, shared.metrics.snapshot().to_prometheus()),
        ("POST", "/advise") => advise(shared, &request.body),
        ("POST", "/tune") => tune(shared, &request.body),
        (_, "/healthz" | "/metrics" | "/advise" | "/tune") => {
            Response::error(405, &format!("method {} not allowed", request.method))
        }
        (_, path) => Response::error(404, &format!("no route for `{path}`")),
    }
}

fn healthz(shared: &Shared) -> Response {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let payload = serde::Value::Object(vec![
        ("status".into(), serde::Value::Str(status.into())),
        (
            "backend".into(),
            serde::Value::Str(shared.engine.backend_name().into()),
        ),
        (
            "platform".into(),
            serde::Value::Str(shared.engine.platform().slug().into()),
        ),
    ]);
    Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_else(|_| "{}".into()),
    )
}

/// RAII decrement of the in-flight gauge.
struct InFlight<'a>(&'a ServeMetrics);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The admission + body-parse preamble both POST routes share: count the
/// request into the in-flight gauge (the returned guard holds the slot for
/// the engine work and releases it on drop), shed 429 + `Retry-After` past
/// `max_inflight` (bumping the route's `rejected` counter), refuse 503
/// while draining, and parse the JSON body (400s name the expected
/// `payload` type). Admission runs before the JSON parse: an overloaded
/// server sheds after the size-bounded HTTP read, spending no further work.
fn admit_and_parse<'a, T: for<'de> serde::Deserialize<'de>>(
    shared: &'a Shared,
    body: &[u8],
    rejected: &AtomicU64,
    payload: &str,
) -> Result<(T, InFlight<'a>), Response> {
    let admitted = shared.metrics.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    let guard = InFlight(&shared.metrics);
    if admitted > shared.max_inflight as u64 {
        drop(guard);
        rejected.fetch_add(1, Ordering::Relaxed);
        return Err(Response::error(
            429,
            &format!(
                "{admitted} requests in flight exceeds the {} admitted",
                shared.max_inflight
            ),
        )
        .with_header("Retry-After", "1"));
    }
    if shared.draining.load(Ordering::SeqCst) {
        return Err(Response::error(503, "server is draining"));
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            shared
                .metrics
                .http_bad_requests
                .fetch_add(1, Ordering::Relaxed);
            return Err(Response::error(400, "request body is not UTF-8"));
        }
    };
    match serde_json::from_str(text) {
        Ok(request) => Ok((request, guard)),
        Err(error) => {
            shared
                .metrics
                .http_bad_requests
                .fetch_add(1, Ordering::Relaxed);
            Err(Response::error(400, &format!("invalid {payload}: {error}")))
        }
    }
}

fn advise(shared: &Shared, body: &[u8]) -> Response {
    let (request, _guard): (AdviseRequest, _) = match admit_and_parse(
        shared,
        body,
        &shared.metrics.advise_rejected,
        "AdviseRequest",
    ) {
        Ok(admitted) => admitted,
        Err(response) => return response,
    };
    match shared.batcher.advise(request) {
        Ok(report) => match serde_json::to_string(&report) {
            Ok(json) => {
                shared.metrics.advise_ok.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .record_analysis(&report.diagnostics, report.race_pruned.len() as u64);
                Response::json(200, json)
            }
            Err(error) => {
                shared.metrics.advise_failed.fetch_add(1, Ordering::Relaxed);
                Response::error(500, &format!("serializing report: {error}"))
            }
        },
        Err(error) => {
            let status = match &error {
                ServeError::Overloaded { .. } => {
                    shared
                        .metrics
                        .advise_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return Response::error(429, &error.to_string())
                        .with_header("Retry-After", "1");
                }
                ServeError::ShuttingDown => 503,
                ServeError::Engine(EngineError::BackendUnavailable(_)) => 503,
                // The request was well-formed HTTP+JSON but the engine
                // cannot satisfy it (unknown kernel, bad source, empty
                // budget): the client's fault, a semantic 422.
                ServeError::Engine(_) => 422,
            };
            shared.metrics.advise_failed.fetch_add(1, Ordering::Relaxed);
            Response::error(status, &error.to_string())
        }
    }
}

/// `POST /tune`: run a budgeted variant-space search with the shared engine
/// as cost model.
///
/// Admission control is the same in-flight gauge `/advise` uses — a tuning
/// run is strictly heavier than an advise call (many frontier batches), so
/// it must not be able to sneak past the load shedding. The micro-batcher
/// is *not* in this path: the tuner already batches internally (each search
/// generation is one `advise_many`, i.e. one backend `predict_batch`).
fn tune(shared: &Shared, body: &[u8]) -> Response {
    shared.metrics.tune_requests.fetch_add(1, Ordering::Relaxed);
    let (mut request, _guard): (TuneRequest, _) =
        match admit_and_parse(shared, body, &shared.metrics.tune_rejected, "TuneRequest") {
            Ok(admitted) => admitted,
            Err(response) => return response,
        };
    // Clamp the client-supplied budget to the server's ceiling: search
    // work is otherwise unbounded from the wire, and an admission slot
    // must not be holdable for hours (the report's accounting shows the
    // clamped budget the run actually got).
    request.limits.max_evaluations = request
        .limits
        .max_evaluations
        .min(shared.max_tune_evaluations);
    request.limits.max_generations = request
        .limits
        .max_generations
        .min(shared.max_tune_generations);
    match shared.engine.tune(&request) {
        Ok(report) => match serde_json::to_string(&report) {
            Ok(json) => {
                shared.metrics.tune_ok.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .record_analysis(&[], report.space.race_pruned);
                Response::json(200, json)
            }
            Err(error) => {
                shared.metrics.tune_failed.fetch_add(1, Ordering::Relaxed);
                Response::error(500, &format!("serializing tune report: {error}"))
            }
        },
        Err(error) => {
            let status = match &error {
                TuneError::Engine(EngineError::BackendUnavailable(_)) => 503,
                // Well-formed HTTP+JSON the tuner cannot satisfy (unknown
                // kernel, empty budget, starved evaluation budget): a
                // semantic 422, mirroring /advise.
                _ => 422,
            };
            shared.metrics.tune_failed.fetch_add(1, Ordering::Relaxed);
            Response::error(status, &error.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_engine::AdviseReport;
    use pg_perfsim::Platform;
    use std::io::{Read, Write};

    fn start(config: ServeConfig) -> (Server, Arc<Engine>) {
        let engine = Arc::new(Engine::builder().platform(Platform::SummitV100).build());
        let server = Server::start(Arc::clone(&engine), config).unwrap();
        (server, engine)
    }

    /// One request over a fresh connection; returns (status, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn post_advise(addr: SocketAddr, json: &str) -> (u16, String) {
        roundtrip(
            addr,
            &format!(
                "POST /advise HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            ),
        )
    }

    #[test]
    fn healthz_reports_backend_and_platform() {
        let (server, _) = start(ServeConfig::default());
        let (status, body) = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"backend\":\"simulator\""));
        assert!(body.contains("\"platform\":\"summit-v100\""));
        server.shutdown();
    }

    #[test]
    fn advise_round_trip_matches_direct_engine_call() {
        let (server, engine) = start(ServeConfig::default());
        let request = AdviseRequest::catalog("MM/matmul");
        let json = serde_json::to_string(&request).unwrap();
        let (status, body) = post_advise(server.addr(), &json);
        assert_eq!(status, 200, "body: {body}");
        let served: AdviseReport = serde_json::from_str(&body).unwrap();
        let direct = engine.advise(&request).unwrap();
        assert_eq!(served.rankings, direct.rankings);
        assert_eq!(served.failures, direct.failures);
        assert_eq!(served.kernel, direct.kernel);
        assert_eq!(served.backend, "simulator");
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_ok, 1);
        assert_eq!(metrics.in_flight, 0);
    }

    #[test]
    fn unknown_routes_bad_json_and_unknown_kernels_map_to_statuses() {
        let (server, _) = start(ServeConfig::default());
        let addr = server.addr();
        let (status, _) = roundtrip(
            addr,
            "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 404);
        let (status, _) = roundtrip(
            addr,
            "DELETE /advise HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        let (status, body) = post_advise(addr, "{not json");
        assert_eq!(status, 400, "body: {body}");
        let (status, body) = post_advise(
            addr,
            "{\"kernel\":{\"Catalog\":\"Nope/x\"},\"sizes\":null,\"budget\":\"PlatformDefault\"}",
        );
        assert_eq!(status, 422, "body: {body}");
        assert!(body.contains("unknown catalogue kernel"));
        let metrics = server.shutdown();
        assert_eq!(metrics.http_bad_requests, 1);
        assert_eq!(metrics.advise_failed, 1);
    }

    #[test]
    fn tune_round_trip_matches_direct_engine_tune() {
        use pg_tune::{StrategySpec, TuneReport, TuneRequest};
        let (server, engine) = start(ServeConfig::default());
        let request = TuneRequest::catalog("MM/matmul").with_strategy(StrategySpec::Beam {
            width: 2,
            patience: 1,
        });
        let json = serde_json::to_string(&request).unwrap();
        let (status, body) = roundtrip(
            server.addr(),
            &format!(
                "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            ),
        );
        assert_eq!(status, 200, "body: {body}");
        let served: TuneReport = serde_json::from_str(&body).unwrap();
        let direct = engine.tune(&request).unwrap();
        assert_eq!(served.best, direct.best);
        assert_eq!(served.trajectory, direct.trajectory);
        assert_eq!(served.space, direct.space);
        let metrics = server.shutdown();
        assert_eq!(metrics.tune_requests, 1);
        assert_eq!(metrics.tune_ok, 1);
        assert_eq!(metrics.advise_ok, 0);
        assert_eq!(metrics.in_flight, 0);
    }

    #[test]
    fn tune_budgets_are_clamped_to_the_server_ceiling() {
        use pg_tune::{StrategySpec, TuneReport, TuneRequest};
        let (server, _) = start(ServeConfig {
            max_tune_evaluations: 8,
            max_tune_generations: 1,
            ..ServeConfig::default()
        });
        // The client asks for the default 4096-evaluation budget; the
        // server must cut the run to its own ceiling.
        let request = TuneRequest::catalog("MM/matmul").with_strategy(StrategySpec::Exhaustive);
        let json = serde_json::to_string(&request).unwrap();
        let (status, body) = roundtrip(
            server.addr(),
            &format!(
                "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            ),
        );
        assert_eq!(status, 200, "body: {body}");
        let served: TuneReport = serde_json::from_str(&body).unwrap();
        assert!(
            served.space.evaluated <= 8,
            "server ceiling ignored: {:?}",
            served.space
        );
        assert!(served.generations <= 1);
        server.shutdown();
    }

    #[test]
    fn tune_maps_bad_requests_and_unknown_kernels_to_statuses() {
        use pg_tune::TuneRequest;
        let (server, _) = start(ServeConfig::default());
        let addr = server.addr();
        let post = |json: &str| {
            roundtrip(
                addr,
                &format!(
                    "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{json}",
                    json.len()
                ),
            )
        };
        let (status, _) = post("{not json");
        assert_eq!(status, 400);
        let json = serde_json::to_string(&TuneRequest::catalog("Nope/none")).unwrap();
        let (status, body) = post(&json);
        assert_eq!(status, 422, "body: {body}");
        assert!(body.contains("unknown catalogue kernel"));
        let (status, _) = roundtrip(
            addr,
            "DELETE /tune HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        let metrics = server.shutdown();
        assert_eq!(metrics.tune_requests, 2);
        assert_eq!(metrics.tune_ok, 0);
        assert_eq!(metrics.tune_failed, 1);
        assert_eq!(metrics.http_bad_requests, 1);
    }

    #[test]
    fn tune_admission_control_rejects_with_retry_after() {
        use pg_tune::TuneRequest;
        let (server, _) = start(ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        });
        server
            .shared
            .metrics
            .in_flight
            .fetch_add(1, Ordering::SeqCst);
        let json = serde_json::to_string(&TuneRequest::catalog("MM/matmul")).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /tune HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{json}",
                    json.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        server
            .shared
            .metrics
            .in_flight
            .fetch_sub(1, Ordering::SeqCst);
        let metrics = server.shutdown();
        assert_eq!(metrics.tune_rejected, 1);
        assert_eq!(metrics.tune_ok, 0);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (server, _) = start(ServeConfig::default());
        let json = serde_json::to_string(&AdviseRequest::catalog("MV/matvec")).unwrap();
        post_advise(server.addr(), &json);
        let (status, body) = roundtrip(
            server.addr(),
            "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("paragraph_serve_advise_ok_total 1"));
        assert!(body.contains("paragraph_serve_batches_total 1"));
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_with_retry_after() {
        let (server, _) = start(ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        });
        // Saturate the single admission slot by holding the gauge
        // ourselves, then observe the rejection.
        server
            .shared
            .metrics
            .in_flight
            .fetch_add(1, Ordering::SeqCst);
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /advise HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{json}",
                    json.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        server
            .shared
            .metrics
            .in_flight
            .fetch_sub(1, Ordering::SeqCst);
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_rejected, 1);
        assert_eq!(metrics.advise_ok, 0);
    }

    #[test]
    fn slow_advise_saturates_admission_for_real() {
        // max_inflight 2 with many connections allowed: flood with slow
        // GNN-free requests and verify at least one real 429 under load.
        let (server, _) = start(ServeConfig {
            max_inflight: 2,
            batch: BatchConfig {
                max_batch: 1,
                max_wait: Duration::from_millis(20),
                queue_depth: 1024,
            },
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let clients: Vec<_> = (0..12)
            .map(|_| {
                let json = json.clone();
                std::thread::spawn(move || post_advise(addr, &json).0)
            })
            .collect();
        let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        assert!(statuses.iter().all(|s| *s == 200 || *s == 429));
        assert!(statuses.contains(&200));
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_ok + metrics.advise_rejected, 12);
        // With 12 concurrent one-per-batch requests against 2 admission
        // slots, overload must actually shed.
        assert!(
            metrics.advise_rejected > 0,
            "admission control never fired: {metrics:?}"
        );
    }

    #[test]
    fn connection_limit_sheds_at_accept() {
        let (server, _) = start(ServeConfig {
            max_connections: 1,
            idle_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        // Occupy the single slot with a keep-alive connection...
        let mut held = TcpStream::connect(addr).unwrap();
        held.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 12];
        held.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"HTTP/1.1 200");
        // ...and watch the next connection get shed without sending a byte.
        let mut shed = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        shed.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        drop(held);
        let metrics = server.shutdown();
        assert_eq!(metrics.connections_shed, 1);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (server, _) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let mut header = Vec::new();
            let mut byte = [0u8; 1];
            while !header.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).unwrap();
                header.push(byte[0]);
            }
            let head = String::from_utf8(header).unwrap();
            assert!(head.starts_with("HTTP/1.1 200"));
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).unwrap();
        }
        // Close the client side so the drain below does not have to wait
        // out the idle timeout.
        drop(stream);
        let metrics = server.shutdown();
        assert_eq!(metrics.http_requests, 3);
    }

    #[test]
    fn shutdown_drains_and_leaves_no_thread_behind() {
        let (server, engine) = start(ServeConfig::default());
        let addr = server.addr();
        let json = serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let json = json.clone();
                std::thread::spawn(move || post_advise(addr, &json).0)
            })
            .collect();
        for client in clients {
            assert_eq!(client.join().unwrap(), 200);
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.advise_ok, 4);
        assert_eq!(metrics.in_flight, 0);
        // The port is released: a fresh server can bind the same address.
        let listener = TcpListener::bind(addr);
        assert!(listener.is_ok(), "address still held after shutdown");
        drop(engine);
    }
}
