//! End-to-end acceptance: a server on an ephemeral port, serving a GNN
//! bundle hot-loaded through the model registry, hammered by concurrent
//! clients — every response must match a direct `Engine::advise` call
//! bit-for-bit, and the scheduler must actually coalesce.

use pg_advisor::LaunchConfig;
use pg_engine::{AdviseReport, AdviseRequest, Engine};
use pg_gnn::{ModelRegistry, TrainConfig, TrainedModel};
use pg_perfsim::Platform;
use pg_serve::{BatchConfig, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const PLATFORM: Platform = Platform::SummitV100;

/// POST one advise request over a fresh connection, returning (status,
/// body).
fn post_advise(addr: SocketAddr, json: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /advise HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn concurrent_gnn_serving_is_bit_identical_to_direct_advise_and_coalesces() {
    // Train a small bundle, publish it to a registry directory, and load
    // it back — the server consumes the *persisted* model, exactly like a
    // process started with `--model`.
    let dataset = pg_dataset::collect_platform(
        PLATFORM,
        &pg_dataset::PipelineConfig {
            scale: pg_dataset::DatasetScale::Fast,
            seed: 3,
            noise_sigma: 0.02,
        },
    );
    let (bundle, _) = TrainedModel::fit(&dataset, &TrainConfig::fast()).unwrap();
    let dir = std::env::temp_dir().join(format!("pg-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::at(&dir);
    registry.publish(&bundle, PLATFORM).unwrap();
    let loaded = registry.load_platform(PLATFORM).unwrap();

    let engine = Arc::new(
        Engine::builder()
            .platform(PLATFORM)
            .backend(loaded.into_backend())
            .build(),
    );
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            // A generous flush window so the coalescing we assert on
            // cannot be lost to scheduler noise (each client gets its own
            // connection thread, so all 32 are in the batcher together).
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(50),
                queue_depth: 256,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Eight distinct requests, cycled over 32 concurrent clients.
    let launches = [
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
        LaunchConfig {
            teams: 40,
            threads: 256,
        },
    ];
    let distinct: Vec<AdviseRequest> = [
        "MM/matmul",
        "MV/matvec",
        "Transpose/transpose",
        "KNN/distances",
    ]
    .iter()
    .flat_map(|kernel| {
        launches
            .iter()
            .map(|&launch| AdviseRequest::catalog(*kernel).with_launch(launch))
    })
    .collect();
    assert!(pg_kernels_exist(&distinct, &engine));

    let clients: Vec<_> = (0..32)
        .map(|i| {
            let request = distinct[i % distinct.len()].clone();
            let json = serde_json::to_string(&request).unwrap();
            std::thread::spawn(move || {
                let (status, body) = post_advise(addr, &json);
                (request, status, body)
            })
        })
        .collect();

    let mut served = 0;
    for client in clients {
        let (request, status, body) = client.join().unwrap();
        assert_eq!(status, 200, "request {:?} failed: {body}", request.kernel);
        let response: AdviseReport = serde_json::from_str(&body).unwrap();
        let direct = engine.advise(&request).unwrap();
        // Bit-for-bit: the ranked predictions (f64 bit patterns included —
        // JSON uses the shortest round-trippable form) and every
        // provenance field. Timing and batch-scoped cache accounting are
        // wall-clock- and coalescing-dependent by design, so they are the
        // only fields excluded.
        assert_eq!(response.rankings, direct.rankings);
        assert_eq!(response.failures, direct.failures);
        assert_eq!(response.kernel, direct.kernel);
        assert_eq!(response.platform, direct.platform);
        assert_eq!(response.backend, "gnn");
        for (a, b) in response.rankings.iter().zip(&direct.rankings) {
            assert_eq!(a.predicted_ms.to_bits(), b.predicted_ms.to_bits());
        }
        served += 1;
    }
    assert_eq!(served, 32);

    let metrics = server.shutdown();
    assert_eq!(metrics.advise_ok, 32);
    assert_eq!(metrics.batched_requests, 32);
    assert!(
        metrics.coalesced_batches >= 1 && metrics.max_batch_size > 1,
        "scheduler never coalesced: {metrics:?}"
    );
    assert!(metrics.batches < 32, "every request ran in its own batch");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Guard against catalogue renames silently weakening the test.
fn pg_kernels_exist(requests: &[AdviseRequest], engine: &Engine) -> bool {
    requests.iter().all(|r| engine.advise(r).is_ok())
}

/// POST one tune request over a fresh connection, returning (status, body).
fn post_tune(addr: SocketAddr, json: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /tune HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The serve-tier tune contract: a tuned request over HTTP is bit-for-bit
/// the direct `Engine::tune` answer (wall time excluded — the only
/// wall-clock-dependent field), every strategy included, and `/metrics`
/// exposes a `tune_requests_total` counter that counts exactly the `/tune`
/// requests received.
#[test]
fn tune_over_http_is_bit_identical_to_direct_engine_tune_and_counted() {
    use pg_tune::{Budget, StrategySpec, TuneEngine, TuneReport, TuneRequest};

    let engine = Arc::new(Engine::builder().platform(PLATFORM).build());
    let server = Server::start(Arc::clone(&engine), pg_serve::ServeConfig::default()).unwrap();
    let addr = server.addr();

    let requests = [
        TuneRequest::catalog("MM/matmul").with_strategy(StrategySpec::Exhaustive),
        TuneRequest::catalog("Transpose/transpose").with_strategy(StrategySpec::Beam {
            width: 2,
            patience: 1,
        }),
        TuneRequest::catalog("KNN/distances")
            .with_strategy(StrategySpec::Hillclimb {
                seed: 99,
                restarts: 1,
            })
            .with_limits(Budget::evaluations(64)),
    ];
    for (posted, request) in requests.iter().enumerate() {
        let json = serde_json::to_string(request).unwrap();
        let (status, body) = post_tune(addr, &json);
        assert_eq!(status, 200, "{:?}: body {body}", request.strategy);
        let served: TuneReport = serde_json::from_str(&body).unwrap();
        let direct = engine.tune(request).unwrap();
        assert_eq!(served.best, direct.best);
        assert_eq!(
            served.best.predicted_ms.to_bits(),
            direct.best.predicted_ms.to_bits()
        );
        assert_eq!(served.trajectory, direct.trajectory);
        assert_eq!(served.space, direct.space);
        assert_eq!(served.stop, direct.stop);
        assert_eq!(served.generations, direct.generations);
        assert_eq!(served.strategy, direct.strategy);
        assert_eq!(served.backend, direct.backend);
        assert_eq!(served.platform, direct.platform);
        assert_eq!(served.kernel, direct.kernel);

        // The counter is on /metrics and counts exactly the posts so far.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut metrics_text = String::new();
        stream.read_to_string(&mut metrics_text).unwrap();
        let expected = format!("paragraph_serve_tune_requests_total {}", posted + 1);
        assert!(
            metrics_text.contains(&expected),
            "metrics missing `{expected}`:\n{metrics_text}"
        );
    }

    let metrics = server.shutdown();
    assert_eq!(metrics.tune_requests, requests.len() as u64);
    assert_eq!(metrics.tune_ok, requests.len() as u64);
    assert_eq!(metrics.tune_failed, 0);
    assert_eq!(metrics.in_flight, 0);
}

/// The legality gate over the wire: a known-racy raw source POSTed to
/// `/advise` still answers with ranked variants (raw sources are
/// diagnosed, never pruned), the response carries the race diagnostics,
/// and `/metrics` exports the per-rule counter.
#[test]
fn racy_raw_source_advise_reports_diagnostics_over_http() {
    let engine = Arc::new(Engine::builder().platform(PLATFORM).build());
    let server = Server::start(Arc::clone(&engine), ServeConfig::default()).unwrap();
    let addr = server.addr();

    let request = AdviseRequest::source(
        "e2e/scan",
        "void scan(float *a) {\n\
         #pragma omp parallel for\n\
         for (int i = 1; i < 65536; i++) { a[i] = a[i - 1]; }\n}",
    );
    let json = serde_json::to_string(&request).unwrap();
    let (status, body) = post_advise(addr, &json);
    assert_eq!(status, 200, "{body}");
    let report: AdviseReport = serde_json::from_str(&body).unwrap();
    assert!(!report.rankings.is_empty());
    assert!(report.race_pruned.is_empty());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "loop-carried-dependence"),
        "diagnostics missing the race: {:?}",
        report.diagnostics
    );

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut metrics_text = String::new();
    stream.read_to_string(&mut metrics_text).unwrap();
    let line = metrics_text
        .lines()
        .find(|l| {
            l.starts_with("paragraph_serve_analyze_rule_total{rule=\"loop-carried-dependence\"}")
        })
        .unwrap_or_else(|| panic!("metrics missing the rule counter:\n{metrics_text}"));
    let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 1, "rule counter never incremented: {line}");

    let snapshot = server.shutdown();
    // Raw sources are never pruned, so the pruned counter stays at zero
    // even though diagnostics were recorded.
    assert_eq!(snapshot.analyze_race_pruned, 0);
}

/// The event loop's connection ceiling: 256 concurrent keep-alive sockets
/// — far beyond the worker pool — each sending its request in interleaved
/// fragments (every connection's first half lands before any second half),
/// then a second request on the same connections. Under
/// thread-per-connection this took 256 threads; here it is a handful.
#[test]
fn many_keep_alive_connections_with_interleaved_partial_writes() {
    let engine = Arc::new(Engine::builder().platform(PLATFORM).build());
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert!(
        server.io_and_worker_threads() <= 8,
        "connection count must not buy threads"
    );
    let addr = server.addr();

    const CONNS: usize = 256;
    let request = b"GET /healthz HTTP/1.1\r\nHost: many\r\n\r\n";
    let split = request.len() / 2;
    let mut sockets: Vec<TcpStream> = (0..CONNS)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();

    for round in 0..2 {
        // Interleaved partial writes: all first fragments, then all second
        // fragments — every connection is mid-request at once, which a
        // blocking parser would need a thread apiece to survive.
        for socket in &mut sockets {
            socket.write_all(&request[..split]).unwrap();
        }
        for socket in &mut sockets {
            socket.write_all(&request[split..]).unwrap();
        }
        for (i, socket) in sockets.iter_mut().enumerate() {
            let mut header = Vec::new();
            let mut byte = [0u8; 1];
            while !header.ends_with(b"\r\n\r\n") {
                socket.read_exact(&mut byte).unwrap();
                header.push(byte[0]);
            }
            let head = String::from_utf8(header).unwrap();
            assert!(
                head.starts_with("HTTP/1.1 200"),
                "conn {i} round {round}: {head}"
            );
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; length];
            socket.read_exact(&mut body).unwrap();
        }
    }

    let live = server.metrics();
    assert_eq!(live.open_connections, CONNS as u64);
    assert_eq!(live.connections_opened, CONNS as u64);
    assert_eq!(live.http_requests, 2 * CONNS as u64);
    assert_eq!(live.connections_shed, 0);

    // Drain with all 256 still open: idle connections close immediately.
    let metrics = server.shutdown();
    assert_eq!(metrics.open_connections, 0);
    assert_eq!(metrics.http_requests, 2 * CONNS as u64);
}

/// Slow-loris robustness: a stalled half-request is cut off by the
/// header-read timeout without occupying a worker, a byte-at-a-time client
/// that stays under the timeout is served normally, and neither blocks a
/// concurrent well-behaved client.
#[test]
fn slow_loris_is_timed_out_and_does_not_block_others() {
    let engine = Arc::new(Engine::builder().platform(PLATFORM).build());
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1, // a single worker: any handler stall would show
            header_read_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // The stall: half a request line, then silence.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(b"GET /hea").unwrap();
    let stalled_since = std::time::Instant::now();

    // The dribble: a full request at one byte per write.
    let dribbler = std::thread::spawn(move || {
        let mut socket = TcpStream::connect(addr).unwrap();
        for &byte in b"GET /healthz HTTP/1.1\r\nHost: drib\r\nConnection: close\r\n\r\n" {
            socket.write_all(&[byte]).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut response = String::new();
        socket.read_to_string(&mut response).unwrap();
        response
    });

    // A normal client is served while both misbehave.
    let (status, body) = post_advise(
        addr,
        &serde_json::to_string(&AdviseRequest::catalog("MM/matmul")).unwrap(),
    );
    assert_eq!(status, 200, "well-behaved client starved: {body}");

    let dribbled = dribbler.join().unwrap();
    assert!(
        dribbled.starts_with("HTTP/1.1 200"),
        "byte-at-a-time client not served: {dribbled}"
    );

    // The stalled connection is closed by the server (EOF, no response)
    // once the header-read timeout expires — not left hanging.
    let mut leftover = String::new();
    stalled.read_to_string(&mut leftover).unwrap();
    assert_eq!(leftover, "", "a half request must not be answered");
    let stalled_for = stalled_since.elapsed();
    assert!(
        stalled_for >= Duration::from_millis(400),
        "cut off before the timeout: {stalled_for:?}"
    );
    assert!(
        stalled_for < Duration::from_secs(5),
        "timeout never fired: {stalled_for:?}"
    );

    let metrics = server.shutdown();
    assert!(
        metrics.conn_timeouts >= 1,
        "timeout not accounted: {metrics:?}"
    );
    assert_eq!(metrics.advise_ok, 1);
    assert_eq!(metrics.http_requests, 2);
}
