//! The serving tier as an untrusted-input boundary: oversized bodies are
//! refused 413 before the engine sees a byte, parse bombs inside
//! well-formed JSON come back as typed 422 diagnostics, and neither
//! failure mode poisons the server or a keep-alive connection.

use pg_engine::{AdviseRequest, Engine};
use pg_perfsim::Platform;
use pg_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start(config: ServeConfig) -> Server {
    let engine = Arc::new(Engine::builder().platform(Platform::SummitV100).build());
    Server::start(engine, config).unwrap()
}

/// Read one HTTP/1.1 response off the stream: headers to the blank line,
/// then exactly `Content-Length` body bytes — leaving the connection
/// usable for the next request.
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read headers");
        assert!(n > 0, "connection closed before headers completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(body.len(), content_length, "no trailing bytes expected");
    (status, head, String::from_utf8_lossy(&body).to_string())
}

fn send_advise(stream: &mut TcpStream, json: &str) {
    stream
        .write_all(
            format!(
                "POST /advise HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{json}",
                json.len()
            )
            .as_bytes(),
        )
        .unwrap();
}

/// A syntactically valid kernel whose expression nesting is far past the
/// default 128-level budget — well-formed JSON around a parse bomb.
fn nesting_bomb_request() -> String {
    let bomb = format!(
        "void bomb() {{ int x = {}1{}; }}",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    serde_json::to_string(&AdviseRequest::source("fuzz/bomb", bomb)).unwrap()
}

#[test]
fn oversized_body_is_413_and_the_server_survives() {
    let server = start(ServeConfig {
        max_body_bytes: 1024,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Declare a body past the cap. The server must answer 413 from the
    // header alone and close, without buffering the body.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /advise HTTP/1.1\r\nHost: t\r\nContent-Length: 10485760\r\n\r\n")
        .unwrap();
    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 413, "body: {body}");
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "413 must close the connection: {head}"
    );
    assert!(body.contains("exceeds the 1024-byte limit"), "body: {body}");

    // A fresh connection is served normally: the rejection was scoped to
    // one socket, not the listener.
    let (status, body) = healthz(addr);
    assert_eq!(status, 200, "body: {body}");

    let metrics = server.shutdown();
    assert_eq!(metrics.parse_rejected, 1);
    assert_eq!(metrics.http_bad_requests, 1);
}

fn healthz(addr: SocketAddr) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn parse_bomb_is_a_typed_422_and_keep_alive_survives() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    send_advise(&mut stream, &nesting_bomb_request());
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 422, "body: {body}");
    // The diagnostic is machine-readable: stable kind, the exhausted cap,
    // and an explicit budget-vs-syntax flag.
    assert!(
        body.contains("\"kind\":\"nesting-too-deep\""),
        "body: {body}"
    );
    assert!(body.contains("\"limit_exceeded\":true"), "body: {body}");
    assert!(body.contains("\"limit\":128"), "body: {body}");

    // Same socket, next request: the rejection must not poison the
    // keep-alive connection.
    let good = serde_json::to_string(&AdviseRequest::source(
        "demo/saxpy",
        "void saxpy(float *a, float *b, int n) {\n\
         #pragma omp parallel for\n\
         for (int i = 0; i < n; i++) { a[i] = a[i] + 2.0 * b[i]; }\n}",
    ))
    .unwrap();
    send_advise(&mut stream, &good);
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"rankings\""), "body: {body}");

    // A plain syntax error is 422 too, but flagged as not-a-limit.
    let typo = serde_json::to_string(&AdviseRequest::source("demo/typo", "void f( {")).unwrap();
    send_advise(&mut stream, &typo);
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 422, "body: {body}");
    assert!(body.contains("\"limit_exceeded\":false"), "body: {body}");

    let metrics = server.shutdown();
    assert_eq!(metrics.parse_rejected, 2);
    assert_eq!(metrics.advise_failed, 2);
    assert_eq!(metrics.advise_ok, 1);
}

#[test]
fn parse_rejections_are_exported_on_the_metrics_endpoint() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    send_advise(&mut stream, &nesting_bomb_request());
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 422);

    let mut metrics_stream = TcpStream::connect(addr).unwrap();
    metrics_stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    metrics_stream.read_to_string(&mut response).unwrap();
    assert!(
        response.contains("# TYPE paragraph_serve_parse_rejected_total counter"),
        "missing family header:\n{response}"
    );
    assert!(
        response.contains("paragraph_serve_parse_rejected_total 1"),
        "missing sample:\n{response}"
    );
    server.shutdown();
}
