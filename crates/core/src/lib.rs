//! # paragraph-core
//!
//! The paper's primary contribution: **ParaGraph**, a weighted, typed graph
//! program representation built on top of the Clang-style AST produced by
//! [`pg_frontend`].
//!
//! A ParaGraph is `(V, E, T, W)`: AST nodes, edges, edge types and edge
//! weights. Beyond the plain parent→child (`Child`) edges of the AST it adds
//! `NextToken`, `NextSib`, `Ref`, `ForExec`, `ForNext`, `ConTrue` and
//! `ConFalse` edges, and it weights `Child` edges by how often the target
//! statement executes (loop trip counts divided across threads under static
//! scheduling, ½ per `if` branch).
//!
//! ```
//! use paragraph_core::{build_default, EdgeType};
//! use pg_frontend::parse;
//!
//! let ast = parse("void f(float *a) { for (int i = 0; i < 50; i++) { a[i] = 2.0 * a[i]; } }").unwrap();
//! let graph = build_default(&ast);
//! assert!(graph.edges_of_type(EdgeType::ForExec).count() == 2);
//! assert_eq!(graph.stats().max_edge_weight, 50.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod builder;
pub mod dot;
pub mod features;
pub mod graph;
pub mod weights;

pub use ablation::Representation;
pub use builder::{build, build_default, BuilderConfig};
pub use features::{
    node_features, to_relational, RelationEdges, RelationalGraph, NODE_FEATURE_DIM,
};
pub use graph::{Edge, EdgeType, GraphNode, GraphStats, ParaGraph};
pub use weights::WeightPolicy;

#[cfg(test)]
mod proptests {
    //! Property-based tests over arbitrary (small) generated programs:
    //! whatever the program, the builder must produce a structurally valid
    //! graph and the representation invariants must hold.
    use super::*;
    use pg_frontend::parse;
    use proptest::prelude::*;

    /// Generate a small random kernel body out of nested loops, ifs and
    /// assignments. The generated source is always valid for our parser.
    fn arb_stmt(depth: u32) -> BoxedStrategy<String> {
        let assign = (0..4u8).prop_map(|v| format!("a[i{v}] = a[i{v}] + 1.0;"));
        if depth == 0 {
            assign.boxed()
        } else {
            let nested_for = (1u32..64, arb_stmt(depth - 1)).prop_map(move |(n, body)| {
                let level = depth;
                format!("for (int i{level} = 0; i{level} < {n}; i{level}++) {{ {body} }}")
            });
            let nested_if = (1u32..64, arb_stmt(depth - 1), arb_stmt(depth - 1)).prop_map(
                move |(n, then_body, else_body)| {
                    let level = depth;
                    format!("if (i{level} < {n}) {{ {then_body} }} else {{ {else_body} }}")
                },
            );
            prop_oneof![assign, nested_for, nested_if].boxed()
        }
    }

    fn arb_kernel() -> impl Strategy<Value = String> {
        arb_stmt(3).prop_map(|body| {
            format!("void k(float *a, int i0, int i1, int i2, int i3) {{ {body} }}")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_programs_produce_valid_graphs(src in arb_kernel()) {
            let ast = parse(&src).expect("generated source must parse");
            for repr in Representation::ALL {
                let config = BuilderConfig::for_representation(repr).with_launch(2, 8);
                let graph = build(&ast, &config);
                prop_assert!(graph.validate().is_ok());
                prop_assert_eq!(graph.node_count(), ast.preorder().len());
                // Child edges always form a spanning tree.
                prop_assert_eq!(
                    graph.edges_of_type(EdgeType::Child).count(),
                    graph.node_count() - 1
                );
                // Raw AST has no augmentation edges.
                if repr == Representation::RawAst {
                    prop_assert_eq!(graph.edge_count(), graph.node_count() - 1);
                }
                // Weights only on ParaGraph.
                if !repr.has_weights() {
                    prop_assert!(graph.edges_of_type(EdgeType::Child).all(|e| e.weight == 1.0));
                }
            }
        }

        #[test]
        fn weights_are_monotone_in_trip_count(n in 1u32..512) {
            let src = format!(
                "void k(float *a) {{ for (int i = 0; i < {n}; i++) {{ a[i] = 1.0; }} }}"
            );
            let ast = parse(&src).unwrap();
            let graph = build_default(&ast);
            prop_assert_eq!(graph.stats().max_edge_weight, n as f64);
        }

        #[test]
        fn relational_conversion_preserves_edge_counts(n in 1u32..64, m in 1u32..64) {
            let src = format!(
                "void k(float *a) {{ for (int i = 0; i < {n}; i++) {{ for (int j = 0; j < {m}; j++) {{ a[i * {m} + j] = 0.0; }} }} }}"
            );
            let ast = parse(&src).unwrap();
            let graph = build_default(&ast);
            let rel = to_relational(&graph);
            prop_assert_eq!(rel.edge_count(), graph.edge_count());
            prop_assert_eq!(rel.features.len(), graph.node_count());
        }
    }
}
