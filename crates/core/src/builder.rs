//! ParaGraph construction (Section III-A of the paper).
//!
//! The builder walks the AST and produces the weighted, typed graph:
//!
//! 1. every AST node becomes a vertex;
//! 2. parent→child relations become `Child` edges whose weight reflects how
//!    often the child executes (loop trip counts divided across threads under
//!    static scheduling, ½ per `if` branch);
//! 3. `NextSib` edges connect consecutive siblings, `NextToken` edges connect
//!    consecutive syntax tokens, `Ref` edges connect variable references to
//!    their declarations;
//! 4. `ForExec`/`ForNext` edges expose the execution order of a loop's four
//!    children, `ConTrue`/`ConFalse` the two outcomes of an `if` condition.

use crate::ablation::Representation;
use crate::graph::{EdgeType, GraphNode, ParaGraph};
use crate::weights::WeightPolicy;
use pg_frontend::analysis::{self, ConstEnv};
use pg_frontend::{Ast, AstKind, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for one graph construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuilderConfig {
    /// Which representation to build (ablation variants).
    pub representation: Representation,
    /// Weight policy (branch probability, thread division, ...).
    pub weights: WeightPolicy,
    /// Number of OpenMP threads per team assumed for static scheduling.
    pub num_threads: u64,
    /// Number of OpenMP teams assumed for `target teams` offloading.
    pub num_teams: u64,
    /// Known integer constants (problem sizes) for trip-count evaluation.
    pub env: ConstEnv,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            representation: Representation::ParaGraph,
            weights: WeightPolicy::default(),
            num_threads: 1,
            num_teams: 1,
            env: ConstEnv::new(),
        }
    }
}

impl BuilderConfig {
    /// Convenience constructor for a given representation with default policy.
    pub fn for_representation(representation: Representation) -> Self {
        Self {
            representation,
            ..Self::default()
        }
    }

    /// Set the launch configuration (teams and threads).
    pub fn with_launch(mut self, num_teams: u64, num_threads: u64) -> Self {
        self.num_teams = num_teams.max(1);
        self.num_threads = num_threads.max(1);
        self
    }

    /// Set the problem-size environment.
    pub fn with_env(mut self, env: ConstEnv) -> Self {
        self.env = env;
        self
    }
}

/// Build the graph representation of `ast` under `config`.
pub fn build(ast: &Ast, config: &BuilderConfig) -> ParaGraph {
    // Stage-level latency attribution: graph construction shows up as
    // `graph_build` in the observability histograms (a no-op when pg-obs
    // is disabled).
    let timer = pg_obs::obs().timer(pg_obs::Stage::GraphBuild);
    let graph = Builder::new(ast, config).run();
    timer.finish();
    graph
}

/// Build the full ParaGraph with default configuration (serial launch).
pub fn build_default(ast: &Ast) -> ParaGraph {
    build(ast, &BuilderConfig::default())
}

struct Builder<'a> {
    ast: &'a Ast,
    config: &'a BuilderConfig,
    graph: ParaGraph,
    /// AST node id -> graph vertex index.
    vertex: HashMap<NodeId, usize>,
}

/// Parallelism pending application to the next (possibly collapsed) loop nest.
#[derive(Debug, Clone, Copy)]
struct PendingParallel {
    /// Remaining parallel divisor to spread over loop levels.
    divisor: f64,
    /// How many more nested loop levels participate (collapse depth).
    levels_remaining: u32,
}

impl<'a> Builder<'a> {
    fn new(ast: &'a Ast, config: &'a BuilderConfig) -> Self {
        Self {
            ast,
            config,
            graph: ParaGraph::new(),
            vertex: HashMap::new(),
        }
    }

    fn run(mut self) -> ParaGraph {
        // 1. vertices, in pre-order so vertex 0 is the root.
        let order = self.ast.preorder();
        for &id in &order {
            let node = self.ast.node(id);
            let label = node_label(self.ast, id);
            let idx = self.graph.add_node(GraphNode {
                ast_node: id,
                kind: node.kind,
                label,
                is_token: self.ast.is_terminal(id),
            });
            self.vertex.insert(id, idx);
        }

        // 2. Child edges with weights.
        self.add_child_edges(self.ast.root(), 1.0, None);

        // 3. Augmentation edges.
        if self.config.representation.has_augmented_edges() {
            self.add_next_sibling_edges(&order);
            self.add_next_token_edges(&order);
            self.add_ref_edges();
            self.add_loop_edges();
            self.add_condition_edges();
        }

        debug_assert!(
            self.graph.validate().is_ok(),
            "builder produced invalid graph"
        );
        self.graph
    }

    fn vertex_of(&self, id: NodeId) -> usize {
        self.vertex[&id]
    }

    // -- Child edges and weights ------------------------------------------------

    fn add_child_edges(&mut self, node: NodeId, multiplier: f64, pending: Option<PendingParallel>) {
        let kind = self.ast.kind(node);
        match kind {
            kind if kind.is_omp_directive() => self.descend_omp_directive(node, multiplier),
            AstKind::ForStmt => self.descend_for(node, multiplier, pending),
            AstKind::IfStmt => self.descend_if(node, multiplier),
            _ => {
                for &child in self.ast.children(node) {
                    self.connect_child(node, child, multiplier);
                    self.add_child_edges(child, multiplier, pending);
                }
            }
        }
    }

    fn connect_child(&mut self, parent: NodeId, child: NodeId, multiplier: f64) {
        let weight = if self.config.representation.has_weights() {
            multiplier
        } else {
            1.0
        };
        self.graph.add_edge(
            self.vertex_of(parent),
            self.vertex_of(child),
            EdgeType::Child,
            weight,
        );
    }

    fn descend_omp_directive(&mut self, node: NodeId, multiplier: f64) {
        // Determine the parallelism this directive distributes iterations over.
        let data = self.ast.node(node).data.omp.clone();
        let (divisor, collapse) = match &data {
            Some(omp) => {
                let is_target = omp.kind.is_target();
                let threads = omp
                    .num_threads()
                    .or(omp.thread_limit())
                    .unwrap_or(self.config.num_threads)
                    .max(1);
                let teams = omp.num_teams().unwrap_or(if is_target {
                    self.config.num_teams.max(1)
                } else {
                    1
                });
                let parallelism = if is_target { teams * threads } else { threads };
                (parallelism as f64, omp.collapse_depth())
            }
            None => (1.0, 1),
        };
        let pending = Some(PendingParallel {
            divisor: divisor.max(1.0),
            levels_remaining: collapse.max(1),
        });
        for &child in self.ast.children(node) {
            self.connect_child(node, child, multiplier);
            self.add_child_edges(child, multiplier, pending);
        }
    }

    fn descend_for(&mut self, node: NodeId, multiplier: f64, pending: Option<PendingParallel>) {
        let children = self.ast.children(node).to_vec();
        let trip = analysis::trip_count(self.ast, node, &self.config.env);

        // How much parallelism applies at this loop level.
        let (share, next_pending) = match pending {
            Some(p) if p.levels_remaining > 0 => {
                let (share, remaining_divisor) = self.config.weights.loop_share(trip, p.divisor);
                let next = if p.levels_remaining > 1 && remaining_divisor > 1.0 {
                    Some(PendingParallel {
                        divisor: remaining_divisor,
                        levels_remaining: p.levels_remaining - 1,
                    })
                } else {
                    None
                };
                (share, next)
            }
            _ => {
                let (share, _) = self.config.weights.loop_share(trip, 1.0);
                (share, None)
            }
        };
        let body_multiplier = multiplier * share;

        // Child order: [init, cond, body, inc] (paper convention).
        if let Some(&init) = children.first() {
            self.connect_child(node, init, multiplier);
            self.add_child_edges(init, multiplier, None);
        }
        if let Some(&cond) = children.get(1) {
            self.connect_child(node, cond, body_multiplier);
            self.add_child_edges(cond, body_multiplier, None);
        }
        if let Some(&body) = children.get(2) {
            self.connect_child(node, body, body_multiplier);
            self.add_child_edges(body, body_multiplier, next_pending);
        }
        if let Some(&inc) = children.get(3) {
            self.connect_child(node, inc, body_multiplier);
            self.add_child_edges(inc, body_multiplier, None);
        }
    }

    fn descend_if(&mut self, node: NodeId, multiplier: f64) {
        let children = self.ast.children(node).to_vec();
        let branch_multiplier = multiplier * self.config.weights.branch_share();
        if let Some(&cond) = children.first() {
            self.connect_child(node, cond, multiplier);
            self.add_child_edges(cond, multiplier, None);
        }
        for &branch in children.iter().skip(1) {
            self.connect_child(node, branch, branch_multiplier);
            self.add_child_edges(branch, branch_multiplier, None);
        }
    }

    // -- augmentation edges -------------------------------------------------------

    fn add_next_sibling_edges(&mut self, order: &[NodeId]) {
        for &id in order {
            let children = self.ast.children(id);
            for pair in children.windows(2) {
                self.graph.add_edge(
                    self.vertex_of(pair[0]),
                    self.vertex_of(pair[1]),
                    EdgeType::NextSib,
                    0.0,
                );
            }
        }
    }

    fn add_next_token_edges(&mut self, order: &[NodeId]) {
        let tokens: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&id| self.ast.is_terminal(id))
            .collect();
        for pair in tokens.windows(2) {
            self.graph.add_edge(
                self.vertex_of(pair[0]),
                self.vertex_of(pair[1]),
                EdgeType::NextToken,
                0.0,
            );
        }
    }

    fn add_ref_edges(&mut self) {
        let table = pg_frontend::symbols::resolve(self.ast);
        // The symbol table iterates in hash order; sort for deterministic
        // graph construction (identical inputs must yield identical graphs).
        let mut references: Vec<(NodeId, NodeId)> = table.references().collect();
        references.sort_unstable();
        for (decl_ref, decl) in references {
            // Both endpoints are guaranteed to be in the graph because every
            // reachable AST node became a vertex.
            if let (Some(&src), Some(&dst)) = (self.vertex.get(&decl_ref), self.vertex.get(&decl)) {
                self.graph.add_edge(src, dst, EdgeType::Ref, 0.0);
            }
        }
    }

    fn add_loop_edges(&mut self) {
        for for_stmt in self.ast.find_all(AstKind::ForStmt) {
            let children = self.ast.children(for_stmt);
            if children.len() != 4 {
                continue;
            }
            let (init, cond, body, inc) = (children[0], children[1], children[2], children[3]);
            // ForExec: init -> cond -> body (the flow of executing the next
            // iteration of the loop).
            self.graph.add_edge(
                self.vertex_of(init),
                self.vertex_of(cond),
                EdgeType::ForExec,
                0.0,
            );
            self.graph.add_edge(
                self.vertex_of(cond),
                self.vertex_of(body),
                EdgeType::ForExec,
                0.0,
            );
            // ForNext: body -> inc -> cond (deciding whether the next
            // iteration executes).
            self.graph.add_edge(
                self.vertex_of(body),
                self.vertex_of(inc),
                EdgeType::ForNext,
                0.0,
            );
            self.graph.add_edge(
                self.vertex_of(inc),
                self.vertex_of(cond),
                EdgeType::ForNext,
                0.0,
            );
        }
    }

    fn add_condition_edges(&mut self) {
        for if_stmt in self.ast.find_all(AstKind::IfStmt) {
            let children = self.ast.children(if_stmt);
            let Some(&cond) = children.first() else {
                continue;
            };
            if let Some(&then) = children.get(1) {
                self.graph.add_edge(
                    self.vertex_of(cond),
                    self.vertex_of(then),
                    EdgeType::ConTrue,
                    0.0,
                );
            }
            if let Some(&otherwise) = children.get(2) {
                self.graph.add_edge(
                    self.vertex_of(cond),
                    self.vertex_of(otherwise),
                    EdgeType::ConFalse,
                    0.0,
                );
            }
        }
    }
}

/// Short display label for a vertex.
fn node_label(ast: &Ast, id: NodeId) -> String {
    let node = ast.node(id);
    if let Some(name) = &node.data.name {
        return name.clone();
    }
    if let Some(op) = &node.data.opcode {
        return op.clone();
    }
    if let Some(v) = node.data.int_value {
        return v.to_string();
    }
    if let Some(v) = node.data.float_value {
        return format!("{v}");
    }
    if let Some(lit) = &node.data.literal {
        return lit.clone();
    }
    node.kind.name().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeType;
    use pg_frontend::parse;

    fn figure2_for_ast() -> Ast {
        parse("void f() { for (int i = 0; i < 50; i++) { int y; y = 1; } }").unwrap()
    }

    #[test]
    fn every_reachable_ast_node_becomes_a_vertex() {
        let ast = figure2_for_ast();
        let graph = build_default(&ast);
        assert_eq!(graph.node_count(), ast.preorder().len());
        graph.validate().unwrap();
    }

    #[test]
    fn child_edges_form_a_tree() {
        let ast = figure2_for_ast();
        let graph = build_default(&ast);
        let child_edges = graph.edges_of_type(EdgeType::Child).count();
        assert_eq!(child_edges, graph.node_count() - 1);
    }

    #[test]
    fn figure2_for_loop_weights() {
        // for (int i = 0; i < 50; i++): the init edge keeps weight 1, while
        // cond / body / inc edges carry the trip count 50.
        let ast = figure2_for_ast();
        let graph = build_default(&ast);
        let for_idx = graph
            .nodes()
            .iter()
            .position(|n| n.kind == AstKind::ForStmt)
            .unwrap();
        let weights: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == for_idx)
            .map(|e| e.weight)
            .collect();
        assert_eq!(weights, vec![1.0, 50.0, 50.0, 50.0]);
        // Statements inside the body inherit the factor 50.
        let body_assign = graph
            .nodes()
            .iter()
            .position(|n| n.kind == AstKind::BinaryOperator && n.label == "=")
            .unwrap();
        let into_assign: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.dst == body_assign)
            .map(|e| e.weight)
            .collect();
        assert_eq!(into_assign, vec![50.0]);
    }

    #[test]
    fn figure2_if_branch_weights_are_halved() {
        let ast = parse("void f(int x) { if (x > 50) { x = 1; } else { x = 2; } }").unwrap();
        let graph = build_default(&ast);
        let if_idx = graph
            .nodes()
            .iter()
            .position(|n| n.kind == AstKind::IfStmt)
            .unwrap();
        let weights: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == if_idx)
            .map(|e| e.weight)
            .collect();
        assert_eq!(weights, vec![1.0, 0.5, 0.5]);
    }

    #[test]
    fn if_inside_loop_combines_factors() {
        let ast = parse(
            "void f(int x) { for (int i = 0; i < 50; i++) { if (x > 50) { x = 1; } else { x = 2; } } }",
        )
        .unwrap();
        let graph = build_default(&ast);
        let if_idx = graph
            .nodes()
            .iter()
            .position(|n| n.kind == AstKind::IfStmt)
            .unwrap();
        // CompoundStmt -> IfStmt edge: 50; IfStmt -> cond: 50; branches: 25.
        let incoming: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.dst == if_idx)
            .map(|e| e.weight)
            .collect();
        assert_eq!(incoming, vec![50.0]);
        let outgoing: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == if_idx)
            .map(|e| e.weight)
            .collect();
        assert_eq!(outgoing, vec![50.0, 25.0, 25.0]);
    }

    #[test]
    fn parallel_for_divides_by_threads() {
        let src = r#"
            void k(float *a) {
                #pragma omp parallel for
                for (int i = 0; i < 100; i++) { a[i] = 0.0; }
            }
        "#;
        let ast = parse(src).unwrap();
        let config = BuilderConfig::default().with_launch(1, 4);
        let graph = build(&ast, &config);
        let for_idx = graph
            .nodes()
            .iter()
            .position(|n| n.kind == AstKind::ForStmt)
            .unwrap();
        let weights: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == for_idx)
            .map(|e| e.weight)
            .collect();
        // 100 iterations over 4 threads -> 25 per thread.
        assert_eq!(weights, vec![1.0, 25.0, 25.0, 25.0]);
    }

    #[test]
    fn target_offload_uses_teams_times_threads() {
        let src = r#"
            void k(float *a, float *b) {
                #pragma omp target teams distribute parallel for collapse(2)
                for (int i = 0; i < 64; i++) {
                    for (int j = 0; j < 64; j++) { a[i * 64 + j] = b[j * 64 + i]; }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let config = BuilderConfig::default().with_launch(16, 64); // 1024-way parallelism
        let graph = build(&ast, &config);
        let fors: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == AstKind::ForStmt)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fors.len(), 2);
        // Outer loop absorbs 64 of the 1024-way parallelism, inner loop the
        // remaining 16: outer share 1, inner share 4. The innermost body edge
        // weight is therefore 1 * 4 = 4.
        let outer_body_weight: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == fors[0])
            .map(|e| e.weight)
            .collect();
        assert_eq!(outer_body_weight, vec![1.0, 1.0, 1.0, 1.0]);
        let inner_body_weight: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == fors[1])
            .map(|e| e.weight)
            .collect();
        assert_eq!(inner_body_weight, vec![1.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn without_collapse_only_the_outer_loop_is_divided() {
        let src = r#"
            void k(float *a, float *b) {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) {
                    for (int j = 0; j < 64; j++) { a[i * 64 + j] = b[j * 64 + i]; }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let config = BuilderConfig::default().with_launch(1, 8);
        let graph = build(&ast, &config);
        let fors: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == AstKind::ForStmt)
            .map(|(i, _)| i)
            .collect();
        let outer: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == fors[0])
            .map(|e| e.weight)
            .collect();
        // 64 / 8 = 8 per thread.
        assert_eq!(outer, vec![1.0, 8.0, 8.0, 8.0]);
        let inner: Vec<f64> = graph
            .edges_of_type(EdgeType::Child)
            .filter(|e| e.src == fors[1])
            .map(|e| e.weight)
            .collect();
        // The inner loop is not distributed: its body runs 64 times per outer
        // iteration, i.e. weight 8 * 64 = 512.
        assert_eq!(inner, vec![8.0, 512.0, 512.0, 512.0]);
    }

    #[test]
    fn augmentation_edges_exist_for_loops_and_ifs() {
        let ast = parse(
            "void f(int x) { for (int i = 0; i < 10; i++) { if (x > 1) { x = 1; } else { x = 2; } } }",
        )
        .unwrap();
        let graph = build_default(&ast);
        assert_eq!(graph.edges_of_type(EdgeType::ForExec).count(), 2);
        assert_eq!(graph.edges_of_type(EdgeType::ForNext).count(), 2);
        assert_eq!(graph.edges_of_type(EdgeType::ConTrue).count(), 1);
        assert_eq!(graph.edges_of_type(EdgeType::ConFalse).count(), 1);
        assert!(graph.edges_of_type(EdgeType::NextSib).count() > 0);
        assert!(graph.edges_of_type(EdgeType::NextToken).count() > 0);
        assert!(graph.edges_of_type(EdgeType::Ref).count() > 0);
    }

    #[test]
    fn next_token_edges_form_a_chain_over_terminals() {
        let ast = figure2_for_ast();
        let graph = build_default(&ast);
        let terminals = graph.nodes().iter().filter(|n| n.is_token).count();
        assert_eq!(
            graph.edges_of_type(EdgeType::NextToken).count(),
            terminals - 1
        );
    }

    #[test]
    fn ref_edges_point_at_declarations() {
        let ast = parse("void f() { int x; x = 50; }").unwrap();
        let graph = build_default(&ast);
        let refs: Vec<_> = graph.edges_of_type(EdgeType::Ref).collect();
        assert_eq!(refs.len(), 1);
        let dst = refs[0].dst;
        assert_eq!(graph.node(dst).kind, AstKind::VarDecl);
        let src = refs[0].src;
        assert_eq!(graph.node(src).kind, AstKind::DeclRefExpr);
    }

    #[test]
    fn raw_ast_has_only_child_edges_with_unit_weight() {
        let ast = figure2_for_ast();
        let config = BuilderConfig::for_representation(Representation::RawAst);
        let graph = build(&ast, &config);
        assert_eq!(
            graph.edge_count(),
            graph.edges_of_type(EdgeType::Child).count()
        );
        assert!(graph
            .edges_of_type(EdgeType::Child)
            .all(|e| e.weight == 1.0));
    }

    #[test]
    fn augmented_ast_has_all_edge_types_but_unit_weights() {
        let ast = figure2_for_ast();
        let config = BuilderConfig::for_representation(Representation::AugmentedAst);
        let graph = build(&ast, &config);
        assert!(graph.edges_of_type(EdgeType::ForExec).count() > 0);
        assert!(graph
            .edges_of_type(EdgeType::Child)
            .all(|e| e.weight == 1.0));
    }

    #[test]
    fn environment_controls_trip_counts() {
        let src = "void k(float *a, int n) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }";
        let ast = parse(src).unwrap();
        let mut env = ConstEnv::new();
        env.insert("n".into(), 1000);
        let config = BuilderConfig::default().with_env(env);
        let graph = build(&ast, &config);
        let max_weight = graph.stats().max_edge_weight;
        assert_eq!(max_weight, 1000.0);
    }

    #[test]
    fn graph_is_deterministic() {
        let ast = figure2_for_ast();
        let g1 = build_default(&ast);
        let g2 = build_default(&ast);
        assert_eq!(g1, g2);
    }
}
