//! Edge-weight policy (Section III-A3 of the paper).
//!
//! * The default weight of a `Child` edge is 1.
//! * Statements inside a loop body inherit the loop's trip count as a
//!   multiplicative factor; when the loop is statically scheduled across
//!   `t` threads, the factor is divided by `t` (the per-thread share).
//! * Each branch of an `if` statement is assumed to execute with probability
//!   ½, so weights inside a branch are halved.

use serde::{Deserialize, Serialize};

/// Configurable weight policy. The defaults reproduce the paper's rules; the
/// alternatives exist for the ablation benches called out in DESIGN.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightPolicy {
    /// Probability assigned to each branch of an `if` statement (paper: 0.5).
    pub branch_probability: f64,
    /// Divide statically scheduled parallel-loop trip counts by the amount of
    /// parallelism (paper: enabled).
    pub divide_by_parallelism: bool,
    /// Trip count assumed for loops whose bounds are unknown statically.
    pub unknown_trip_count: u64,
    /// Lower clamp for the per-thread iteration share. Keeping it at 1
    /// prevents a loop body from receiving a weight below a single execution.
    pub min_share: f64,
}

impl Default for WeightPolicy {
    fn default() -> Self {
        Self {
            branch_probability: 0.5,
            divide_by_parallelism: true,
            unknown_trip_count: 64,
            min_share: 1.0,
        }
    }
}

impl WeightPolicy {
    /// Effective multiplier contributed by one loop level.
    ///
    /// `trip` is the loop's trip count (or `None` when unknown) and
    /// `parallel_divisor` the amount of parallelism still available to divide
    /// this loop's iterations across (1 for serial loops). Returns the
    /// per-thread iteration share and the divisor that remains for loops
    /// nested deeper (relevant for `collapse`).
    pub fn loop_share(&self, trip: Option<u64>, parallel_divisor: f64) -> (f64, f64) {
        let trip = trip.unwrap_or(self.unknown_trip_count) as f64;
        if !self.divide_by_parallelism || parallel_divisor <= 1.0 {
            return (trip.max(0.0), 1.0);
        }
        // Split the divisor: this loop absorbs at most `trip` of it, the rest
        // is left for the next collapsed level.
        let absorbed = parallel_divisor.min(trip.max(1.0));
        let remaining = (parallel_divisor / absorbed).max(1.0);
        let share = (trip / absorbed).max(self.min_share);
        (share, remaining)
    }

    /// Weight multiplier for entering one branch of an `if` statement.
    pub fn branch_share(&self) -> f64 {
        self.branch_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_paper() {
        let p = WeightPolicy::default();
        assert_eq!(p.branch_probability, 0.5);
        assert!(p.divide_by_parallelism);
        assert_eq!(p.unknown_trip_count, 64);
    }

    #[test]
    fn serial_loop_share_is_trip_count() {
        let p = WeightPolicy::default();
        let (share, rest) = p.loop_share(Some(100), 1.0);
        assert_eq!(share, 100.0);
        assert_eq!(rest, 1.0);
    }

    #[test]
    fn paper_example_100_iterations_4_threads() {
        // "if a loop has 100 iterations, and it is statically scheduled among
        // four threads, we roughly assume each thread executes 25 iterations"
        let p = WeightPolicy::default();
        let (share, rest) = p.loop_share(Some(100), 4.0);
        assert_eq!(share, 25.0);
        assert_eq!(rest, 1.0);
    }

    #[test]
    fn oversubscribed_loop_clamps_to_one_and_forwards_divisor() {
        // A GPU with 10240-way parallelism collapsing a 128 x 128 nest:
        // the outer loop absorbs 128 of the divisor, the inner the rest.
        let p = WeightPolicy::default();
        let (outer_share, rest) = p.loop_share(Some(128), 10240.0);
        assert_eq!(outer_share, 1.0);
        assert_eq!(rest, 80.0);
        let (inner_share, rest2) = p.loop_share(Some(128), rest);
        assert!((inner_share - 1.6).abs() < 1e-9);
        assert_eq!(rest2, 1.0);
    }

    #[test]
    fn unknown_trip_count_uses_default() {
        let p = WeightPolicy::default();
        let (share, _) = p.loop_share(None, 1.0);
        assert_eq!(share, 64.0);
    }

    #[test]
    fn division_can_be_disabled_for_ablation() {
        let p = WeightPolicy {
            divide_by_parallelism: false,
            ..WeightPolicy::default()
        };
        let (share, rest) = p.loop_share(Some(100), 4.0);
        assert_eq!(share, 100.0);
        assert_eq!(rest, 1.0);
    }

    #[test]
    fn branch_share_is_configurable() {
        let p = WeightPolicy {
            branch_probability: 0.25,
            ..WeightPolicy::default()
        };
        assert_eq!(p.branch_share(), 0.25);
    }
}
