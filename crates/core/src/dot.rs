//! Graphviz DOT export of a [`ParaGraph`], used to visually inspect the
//! representation (the kind of rendering shown in Figure 2 of the paper).

use crate::graph::{EdgeType, ParaGraph};
use std::fmt::Write as _;

/// Options controlling the DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DotOptions {
    /// Include edge weights as labels on `Child` edges.
    pub show_weights: bool,
    /// Include the non-AST augmentation edges (NextToken, Ref, ...).
    pub show_augmented_edges: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            show_weights: true,
            show_augmented_edges: true,
        }
    }
}

/// Colour used for each edge type, loosely following the paper's figure.
fn edge_color(ty: EdgeType) -> &'static str {
    match ty {
        EdgeType::Child => "black",
        EdgeType::NextToken => "orange",
        EdgeType::NextSib => "blue",
        EdgeType::Ref => "deeppink",
        EdgeType::ForExec => "darkgreen",
        EdgeType::ForNext => "purple",
        EdgeType::ConTrue => "forestgreen",
        EdgeType::ConFalse => "red",
    }
}

/// Render the graph in Graphviz DOT format.
pub fn to_dot(graph: &ParaGraph, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph paragraph {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for (i, node) in graph.nodes().iter().enumerate() {
        let shape = if node.is_token { "ellipse" } else { "box" };
        let label = format!("{}\\n{}", node.kind.name(), escape(&node.label));
        let _ = writeln!(out, "  n{i} [label=\"{label}\", shape={shape}];");
    }
    for edge in graph.edges() {
        if !options.show_augmented_edges && edge.ty != EdgeType::Child {
            continue;
        }
        let mut attrs = vec![format!("color={}", edge_color(edge.ty))];
        if edge.ty != EdgeType::Child {
            attrs.push("style=dashed".to_string());
            attrs.push(format!("xlabel=\"{}\"", edge.ty.name()));
        } else if options.show_weights && (edge.weight - 1.0).abs() > 1e-9 {
            attrs.push(format!("label=\"{}\"", edge.weight));
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [{}];",
            edge.src,
            edge.dst,
            attrs.join(", ")
        );
    }
    out.push_str("}\n");
    out
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_default;
    use pg_frontend::parse;

    fn sample() -> ParaGraph {
        let ast = parse("void f() { for (int i = 0; i < 50; i++) { if (i > 10) { i = i + 1; } } }")
            .unwrap();
        build_default(&ast)
    }

    #[test]
    fn dot_output_contains_every_node_and_edge() {
        let graph = sample();
        let dot = to_dot(&graph, &DotOptions::default());
        assert!(dot.starts_with("digraph paragraph {"));
        assert!(dot.trim_end().ends_with('}'));
        for i in 0..graph.node_count() {
            assert!(dot.contains(&format!("n{i} [label=")), "node {i} missing");
        }
        let arrow_count = dot.matches(" -> ").count();
        assert_eq!(arrow_count, graph.edge_count());
    }

    #[test]
    fn weights_appear_on_weighted_child_edges() {
        let graph = sample();
        let dot = to_dot(&graph, &DotOptions::default());
        assert!(
            dot.contains("label=\"50\""),
            "trip-count weight must be rendered"
        );
        assert!(dot.contains("xlabel=\"ForExec\""));
    }

    #[test]
    fn augmented_edges_can_be_hidden() {
        let graph = sample();
        let dot = to_dot(
            &graph,
            &DotOptions {
                show_augmented_edges: false,
                show_weights: false,
            },
        );
        assert!(!dot.contains("ForExec"));
        assert!(!dot.contains("NextToken"));
        let arrow_count = dot.matches(" -> ").count();
        assert_eq!(
            arrow_count,
            graph.node_count() - 1,
            "only Child edges remain"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let mut graph = ParaGraph::new();
        graph.add_node(crate::graph::GraphNode {
            ast_node: 0,
            kind: pg_frontend::AstKind::StringLiteral,
            label: "a \"quoted\" label".to_string(),
            is_token: true,
        });
        let dot = to_dot(&graph, &DotOptions::default());
        assert!(dot.contains("\\\"quoted\\\""));
    }
}
