//! The ParaGraph data structure: a weighted, typed graph over AST nodes.
//!
//! Formally (Equation 2 of the paper) a ParaGraph is `(V, E, T, W)` where
//! `V` are the AST nodes, `E` the edges, `T` the edge types and `W` the edge
//! weights. Weights are non-zero only on `Child` (AST) edges; every other
//! edge type carries weight 0.

use pg_frontend::{AstKind, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Edge types of ParaGraph (`T` in Equation 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeType {
    /// Plain AST parent→child edge. The only edge type that carries weight.
    Child,
    /// Connects each syntax token to the next syntax token (left-to-right).
    NextToken,
    /// Connects each syntax node to its next sibling.
    NextSib,
    /// Connects a `DeclRefExpr` to the declaration of the referenced variable.
    Ref,
    /// Loop execution flow: init→cond and cond→body.
    ForExec,
    /// Loop back-edge flow: body→inc and inc→cond.
    ForNext,
    /// If-condition true branch: cond→then.
    ConTrue,
    /// If-condition false branch: cond→else.
    ConFalse,
}

impl EdgeType {
    /// All edge types, in the fixed order used as relation indices by the GNN.
    pub const ALL: [EdgeType; 8] = [
        EdgeType::Child,
        EdgeType::NextToken,
        EdgeType::NextSib,
        EdgeType::Ref,
        EdgeType::ForExec,
        EdgeType::ForNext,
        EdgeType::ConTrue,
        EdgeType::ConFalse,
    ];

    /// Number of edge types.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index of this edge type (the relation id used by RGAT).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&t| t == self)
            .expect("edge type in ALL")
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            EdgeType::Child => "Child",
            EdgeType::NextToken => "NextToken",
            EdgeType::NextSib => "NextSib",
            EdgeType::Ref => "Ref",
            EdgeType::ForExec => "ForExec",
            EdgeType::ForNext => "ForNext",
            EdgeType::ConTrue => "ConTrue",
            EdgeType::ConFalse => "ConFalse",
        }
    }
}

/// A vertex of the ParaGraph. Each vertex corresponds to exactly one AST node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Id of the originating AST node.
    pub ast_node: NodeId,
    /// Kind of the originating AST node.
    pub kind: AstKind,
    /// Short human-readable label (identifier name, literal or operator).
    pub label: String,
    /// True when the AST node has no children (a syntax token).
    pub is_token: bool,
}

/// A directed, typed, weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex index.
    pub src: usize,
    /// Destination vertex index.
    pub dst: usize,
    /// Edge type (`T`).
    pub ty: EdgeType,
    /// Edge weight (`W`): non-zero only for [`EdgeType::Child`] edges.
    pub weight: f64,
}

/// The ParaGraph representation of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ParaGraph {
    nodes: Vec<GraphNode>,
    edges: Vec<Edge>,
}

/// Summary statistics of a graph, useful for dataset inspection and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of edges per edge type (indexed by [`EdgeType::index`]).
    pub edges_per_type: [usize; EdgeType::COUNT],
    /// Sum of all `Child`-edge weights.
    pub total_child_weight: f64,
    /// Largest single edge weight.
    pub max_edge_weight: f64,
    /// Number of syntax-token vertices.
    pub token_nodes: usize,
}

impl ParaGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vertex and return its index.
    pub fn add_node(&mut self, node: GraphNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Add an edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or if the weight is not finite.
    pub fn add_edge(&mut self, src: usize, dst: usize, ty: EdgeType, weight: f64) {
        assert!(src < self.nodes.len(), "edge source {src} out of range");
        assert!(
            dst < self.nodes.len(),
            "edge destination {dst} out of range"
        );
        assert!(weight.is_finite(), "edge weight must be finite");
        assert!(weight >= 0.0, "edge weight must be non-negative");
        self.edges.push(Edge {
            src,
            dst,
            ty,
            weight,
        });
    }

    /// Number of vertices (`|V|`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (`|E|`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow all vertices.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Borrow all edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Borrow one vertex.
    pub fn node(&self, index: usize) -> &GraphNode {
        &self.nodes[index]
    }

    /// Iterator over the edges of one type.
    pub fn edges_of_type(&self, ty: EdgeType) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.ty == ty)
    }

    /// Vertex index for a given AST node id, if present.
    pub fn node_for_ast(&self, ast_node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.ast_node == ast_node)
    }

    /// Out-degree of a vertex (all edge types).
    pub fn out_degree(&self, index: usize) -> usize {
        self.edges.iter().filter(|e| e.src == index).count()
    }

    /// In-degree of a vertex (all edge types).
    pub fn in_degree(&self, index: usize) -> usize {
        self.edges.iter().filter(|e| e.dst == index).count()
    }

    /// Histogram of node kinds.
    pub fn kind_histogram(&self) -> HashMap<AstKind, usize> {
        let mut hist = HashMap::new();
        for n in &self.nodes {
            *hist.entry(n.kind).or_insert(0) += 1;
        }
        hist
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> GraphStats {
        let mut edges_per_type = [0usize; EdgeType::COUNT];
        let mut total_child_weight = 0.0;
        let mut max_edge_weight = 0.0f64;
        for e in &self.edges {
            edges_per_type[e.ty.index()] += 1;
            if e.ty == EdgeType::Child {
                total_child_weight += e.weight;
            }
            max_edge_weight = max_edge_weight.max(e.weight);
        }
        GraphStats {
            nodes: self.nodes.len(),
            edges: self.edges.len(),
            edges_per_type,
            total_child_weight,
            max_edge_weight,
            token_nodes: self.nodes.iter().filter(|n| n.is_token).count(),
        }
    }

    /// Check the structural invariants promised by the paper's definition:
    ///
    /// 1. every edge endpoint is a valid vertex,
    /// 2. only `Child` edges have non-zero weight,
    /// 3. `Child` edges form a tree over the vertices (each vertex except the
    ///    root has exactly one incoming `Child` edge),
    /// 4. all weights are finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        let mut child_in_degree = vec![0usize; n];
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= n || e.dst >= n {
                return Err(format!("edge {i} has an out-of-range endpoint"));
            }
            if !e.weight.is_finite() || e.weight < 0.0 {
                return Err(format!("edge {i} has invalid weight {}", e.weight));
            }
            match e.ty {
                EdgeType::Child => child_in_degree[e.dst] += 1,
                _ => {
                    if e.weight != 0.0 {
                        return Err(format!(
                            "edge {i} of type {} must have weight 0, found {}",
                            e.ty.name(),
                            e.weight
                        ));
                    }
                }
            }
        }
        if n > 0 {
            let roots = child_in_degree.iter().filter(|&&d| d == 0).count();
            if roots != 1 {
                return Err(format!(
                    "expected exactly one Child-edge root, found {roots}"
                ));
            }
            if let Some(idx) = child_in_degree.iter().position(|&d| d > 1) {
                return Err(format!(
                    "vertex {idx} has {} incoming Child edges",
                    child_in_degree[idx]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> ParaGraph {
        let mut g = ParaGraph::new();
        let a = g.add_node(GraphNode {
            ast_node: 0,
            kind: AstKind::CompoundStmt,
            label: "CompoundStmt".into(),
            is_token: false,
        });
        let b = g.add_node(GraphNode {
            ast_node: 1,
            kind: AstKind::IntegerLiteral,
            label: "50".into(),
            is_token: true,
        });
        let c = g.add_node(GraphNode {
            ast_node: 2,
            kind: AstKind::DeclRefExpr,
            label: "x".into(),
            is_token: true,
        });
        g.add_edge(a, b, EdgeType::Child, 1.0);
        g.add_edge(a, c, EdgeType::Child, 1.0);
        g.add_edge(b, c, EdgeType::NextToken, 0.0);
        g.add_edge(b, c, EdgeType::NextSib, 0.0);
        g
    }

    #[test]
    fn edge_type_indices_are_stable() {
        assert_eq!(EdgeType::Child.index(), 0);
        assert_eq!(EdgeType::ConFalse.index(), 7);
        assert_eq!(EdgeType::COUNT, 8);
        for (i, t) in EdgeType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn build_and_query_tiny_graph() {
        let g = tiny_graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.edges_of_type(EdgeType::Child).count(), 2);
        assert_eq!(g.edges_of_type(EdgeType::Ref).count(), 0);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 3);
        assert_eq!(g.node_for_ast(1), Some(1));
        assert_eq!(g.node_for_ast(99), None);
        g.validate().unwrap();
    }

    #[test]
    fn stats_counts_types_and_weights() {
        let g = tiny_graph();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 4);
        assert_eq!(s.edges_per_type[EdgeType::Child.index()], 2);
        assert_eq!(s.edges_per_type[EdgeType::NextToken.index()], 1);
        assert_eq!(s.total_child_weight, 2.0);
        assert_eq!(s.token_nodes, 2);
    }

    #[test]
    fn validate_rejects_weighted_non_child_edges() {
        let mut g = tiny_graph();
        g.add_edge(1, 2, EdgeType::Ref, 3.0);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_multiple_child_parents() {
        let mut g = tiny_graph();
        g.add_edge(1, 2, EdgeType::Child, 1.0);
        let err = g.validate().unwrap_err();
        assert!(err.contains("incoming Child edges"), "{err}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_bounds() {
        let mut g = tiny_graph();
        g.add_edge(0, 99, EdgeType::Child, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn add_edge_rejects_negative_weight() {
        let mut g = tiny_graph();
        g.add_edge(0, 1, EdgeType::Child, -1.0);
    }

    #[test]
    fn kind_histogram() {
        let g = tiny_graph();
        let hist = g.kind_histogram();
        assert_eq!(hist[&AstKind::CompoundStmt], 1);
        assert_eq!(hist[&AstKind::IntegerLiteral], 1);
    }

    #[test]
    fn serialization_round_trip() {
        let g = tiny_graph();
        let json = serde_json::to_string(&g).unwrap();
        let back: ParaGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
