//! Conversion of a [`ParaGraph`] into the numeric tensors consumed by the
//! GNN: per-node feature vectors and per-relation edge lists.
//!
//! The paper treats ParaGraph as a homogeneous graph whose edges carry a
//! type id and a weight; the RGAT convolution computes attention per edge
//! type. This module groups the edges by type and produces, for every
//! relation, parallel `src` / `dst` / `weight` arrays (a COO layout).

use crate::graph::{EdgeType, ParaGraph};
use pg_frontend::AstKind;
use serde::{Deserialize, Serialize};

/// Dimension of the per-node feature vector produced by [`node_features`]:
/// a one-hot encoding of the node kind plus two structural scalars
/// (is-token flag and normalised out-degree).
pub const NODE_FEATURE_DIM: usize = AstKind::ALL.len() + 2;

/// Per-node feature matrix (`node_count x NODE_FEATURE_DIM`, row-major).
pub fn node_features(graph: &ParaGraph) -> Vec<Vec<f32>> {
    let n = graph.node_count();
    let mut out_degree = vec![0usize; n];
    for e in graph.edges() {
        out_degree[e.src] += 1;
    }
    let max_degree = out_degree.iter().copied().max().unwrap_or(1).max(1) as f32;

    graph
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut f = vec![0.0f32; NODE_FEATURE_DIM];
            f[node.kind.index()] = 1.0;
            f[AstKind::ALL.len()] = if node.is_token { 1.0 } else { 0.0 };
            f[AstKind::ALL.len() + 1] = out_degree[i] as f32 / max_degree;
            f
        })
        .collect()
}

/// Edges of one relation in COO format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RelationEdges {
    /// Source vertex per edge.
    pub src: Vec<usize>,
    /// Destination vertex per edge.
    pub dst: Vec<usize>,
    /// Edge weight per edge (0 for non-Child relations).
    pub weight: Vec<f32>,
}

impl RelationEdges {
    /// Number of edges in this relation.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when the relation has no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// The GNN-ready form of a graph: node features plus per-relation edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationalGraph {
    /// `node_count x NODE_FEATURE_DIM` feature matrix.
    pub features: Vec<Vec<f32>>,
    /// One edge list per [`EdgeType`], indexed by [`EdgeType::index`].
    pub relations: Vec<RelationEdges>,
    /// Number of vertices.
    pub node_count: usize,
}

impl RelationalGraph {
    /// Total number of edges across all relations.
    pub fn edge_count(&self) -> usize {
        self.relations.iter().map(RelationEdges::len).sum()
    }

    /// Attention priors for one relation: Child edges use `1 + ln(1 + w)` so
    /// that hot loop bodies attract more attention mass without the raw trip
    /// counts (which reach millions) destabilising the softmax; all other
    /// relations use a uniform prior of 1.
    pub fn attention_priors(&self, relation: usize) -> Vec<f32> {
        self.relations[relation]
            .weight
            .iter()
            .map(|&w| 1.0 + (1.0 + w.max(0.0)).ln())
            .collect()
    }
}

/// Convert a [`ParaGraph`] into its GNN-ready relational form.
pub fn to_relational(graph: &ParaGraph) -> RelationalGraph {
    let mut relations = vec![RelationEdges::default(); EdgeType::COUNT];
    for e in graph.edges() {
        let rel = &mut relations[e.ty.index()];
        rel.src.push(e.src);
        rel.dst.push(e.dst);
        rel.weight.push(e.weight as f32);
    }
    RelationalGraph {
        features: node_features(graph),
        relations,
        node_count: graph.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_default;
    use pg_frontend::parse;

    fn sample_graph() -> ParaGraph {
        let ast = parse(
            "void f(float *a) { for (int i = 0; i < 50; i++) { if (i > 25) { a[i] = 1.0; } } }",
        )
        .unwrap();
        build_default(&ast)
    }

    #[test]
    fn feature_matrix_has_expected_shape() {
        let graph = sample_graph();
        let features = node_features(&graph);
        assert_eq!(features.len(), graph.node_count());
        assert!(features.iter().all(|f| f.len() == NODE_FEATURE_DIM));
    }

    #[test]
    fn one_hot_encoding_is_exclusive() {
        let graph = sample_graph();
        let features = node_features(&graph);
        for (i, f) in features.iter().enumerate() {
            let ones = f[..AstKind::ALL.len()]
                .iter()
                .filter(|&&v| v == 1.0)
                .count();
            assert_eq!(ones, 1, "node {i} must have exactly one kind bit set");
            let kind_idx = graph.node(i).kind.index();
            assert_eq!(f[kind_idx], 1.0);
        }
    }

    #[test]
    fn token_flag_matches_graph() {
        let graph = sample_graph();
        let features = node_features(&graph);
        for (i, f) in features.iter().enumerate() {
            let flag = f[AstKind::ALL.len()];
            assert_eq!(flag == 1.0, graph.node(i).is_token);
        }
    }

    #[test]
    fn relational_grouping_preserves_all_edges() {
        let graph = sample_graph();
        let rel = to_relational(&graph);
        assert_eq!(rel.edge_count(), graph.edge_count());
        assert_eq!(rel.node_count, graph.node_count());
        assert_eq!(rel.relations.len(), EdgeType::COUNT);
        // Child relation edge count matches.
        assert_eq!(
            rel.relations[EdgeType::Child.index()].len(),
            graph.edges_of_type(EdgeType::Child).count()
        );
    }

    #[test]
    fn child_weights_survive_grouping() {
        let graph = sample_graph();
        let rel = to_relational(&graph);
        let child = &rel.relations[EdgeType::Child.index()];
        let max_w = child.weight.iter().copied().fold(0.0f32, f32::max);
        assert_eq!(max_w, 50.0);
        // Non-child relations have zero weights.
        for (i, r) in rel.relations.iter().enumerate() {
            if i != EdgeType::Child.index() {
                assert!(r.weight.iter().all(|&w| w == 0.0));
            }
        }
    }

    #[test]
    fn attention_priors_compress_large_weights() {
        let graph = sample_graph();
        let rel = to_relational(&graph);
        let priors = rel.attention_priors(EdgeType::Child.index());
        assert_eq!(priors.len(), rel.relations[EdgeType::Child.index()].len());
        assert!(priors.iter().all(|&p| p >= 1.0));
        let max_prior = priors.iter().copied().fold(0.0f32, f32::max);
        // ln(1+50) + 1 ≈ 4.93 — large trip counts must not blow up the prior.
        assert!(max_prior < 6.0);
        // Non-child relations have uniform priors.
        let ref_priors = rel.attention_priors(EdgeType::Ref.index());
        assert!(ref_priors.iter().all(|&p| (p - 1.0).abs() < 1e-6));
    }

    #[test]
    fn relational_graph_serialises() {
        let graph = sample_graph();
        let rel = to_relational(&graph);
        let json = serde_json::to_string(&rel).unwrap();
        let back: RelationalGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(rel, back);
    }
}
