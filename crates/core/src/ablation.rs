//! Representation variants used by the paper's ablation study (Section V-C).
//!
//! * **Raw AST** — only `Child` edges, all with weight 1.
//! * **Augmented AST** — all eight edge types, but `Child` weights fixed at 1.
//! * **ParaGraph** — all edge types plus the loop/branch-derived weights.

use serde::{Deserialize, Serialize};

/// Which program representation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Representation {
    /// Plain AST: only parent→child edges, uniform weight 1.
    RawAst,
    /// AST plus the seven augmentation edge types, uniform weight 1.
    AugmentedAst,
    /// The full ParaGraph representation (augmented edges + weights).
    #[default]
    ParaGraph,
}

impl Representation {
    /// All variants, in the order used by the ablation tables.
    pub const ALL: [Representation; 3] = [
        Representation::RawAst,
        Representation::AugmentedAst,
        Representation::ParaGraph,
    ];

    /// Display name used in Table IV and Figure 7.
    pub fn name(self) -> &'static str {
        match self {
            Representation::RawAst => "Raw AST",
            Representation::AugmentedAst => "Augmented AST",
            Representation::ParaGraph => "ParaGraph",
        }
    }

    /// True when the augmentation edges (NextToken, NextSib, Ref, ForExec,
    /// ForNext, ConTrue, ConFalse) are included.
    pub fn has_augmented_edges(self) -> bool {
        !matches!(self, Representation::RawAst)
    }

    /// True when Child edges carry loop/branch-derived weights.
    pub fn has_weights(self) -> bool {
        matches!(self, Representation::ParaGraph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table_iv() {
        assert_eq!(Representation::ALL[0].name(), "Raw AST");
        assert_eq!(Representation::ALL[1].name(), "Augmented AST");
        assert_eq!(Representation::ALL[2].name(), "ParaGraph");
    }

    #[test]
    fn feature_flags() {
        assert!(!Representation::RawAst.has_augmented_edges());
        assert!(!Representation::RawAst.has_weights());
        assert!(Representation::AugmentedAst.has_augmented_edges());
        assert!(!Representation::AugmentedAst.has_weights());
        assert!(Representation::ParaGraph.has_augmented_edges());
        assert!(Representation::ParaGraph.has_weights());
    }

    #[test]
    fn default_is_paragraph() {
        assert_eq!(Representation::default(), Representation::ParaGraph);
    }
}
