//! Figure 8 — Per-data-point comparison of ParaGraph and COMPOFF on the
//! NVIDIA V100: prediction error for each validation point, summarised per
//! runtime decile (the paper plots the raw per-point errors; a text harness
//! summarises them instead).

use paragraph_core::Representation;
use pg_bench::{bench_scale, compoff_run, paragraph_run, print_header};
use pg_perfsim::Platform;
use std::collections::HashMap;

fn main() {
    let scale = bench_scale();
    print_header(
        "Figure 8: ParaGraph vs COMPOFF — per-data-point error on NVIDIA V100",
        scale,
    );

    let pg = paragraph_run(Platform::SummitV100, Representation::ParaGraph, scale);
    let co = compoff_run(Platform::SummitV100, scale);

    // Join on the validation point ids (same split seed -> same points).
    let co_by_id: HashMap<usize, f32> = co
        .validation
        .iter()
        .map(|p| (p.id, p.predicted_ms))
        .collect();
    let mut joined: Vec<(f32, f32, f32)> = pg
        .validation
        .iter()
        .filter_map(|p| {
            co_by_id
                .get(&p.id)
                .map(|&c| (p.actual_ms, p.predicted_ms, c))
        })
        .collect();
    joined.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    println!(
        "joined validation points: {} (ParaGraph {} / COMPOFF {})",
        joined.len(),
        pg.validation.len(),
        co.validation.len()
    );
    println!(
        "\n{:<26} {:>18} {:>18}   (mean absolute error, ms)",
        "runtime decile", "ParaGraph", "COMPOFF"
    );

    let deciles = 10usize;
    let mut pg_wins = 0usize;
    for d in 0..deciles {
        let lo = d * joined.len() / deciles;
        let hi = ((d + 1) * joined.len() / deciles)
            .max(lo + 1)
            .min(joined.len());
        if lo >= joined.len() {
            break;
        }
        let slice = &joined[lo..hi];
        let pg_err: f32 =
            slice.iter().map(|(a, p, _)| (a - p).abs()).sum::<f32>() / slice.len() as f32;
        let co_err: f32 =
            slice.iter().map(|(a, _, c)| (a - c).abs()).sum::<f32>() / slice.len() as f32;
        if pg_err <= co_err {
            pg_wins += 1;
        }
        println!(
            "{:<26} {:>18.2} {:>18.2}",
            format!("{:.2} - {:.2} ms", slice[0].0, slice[slice.len() - 1].0),
            pg_err,
            co_err
        );
    }

    let overall_pg: f32 =
        joined.iter().map(|(a, p, _)| (a - p).abs()).sum::<f32>() / joined.len().max(1) as f32;
    let overall_co: f32 =
        joined.iter().map(|(a, _, c)| (a - c).abs()).sum::<f32>() / joined.len().max(1) as f32;
    println!("\noverall mean |error|: ParaGraph {overall_pg:.2} ms, COMPOFF {overall_co:.2} ms");
    println!(
        "ParaGraph RMSE {:.1} ms vs COMPOFF RMSE {:.1} ms",
        pg.rmse_ms, co.rmse_ms
    );
    println!("deciles where ParaGraph is at least as accurate: {pg_wins}/10");
    println!("\nPaper shape: COMPOFF shows a higher error for small-runtime kernels, while");
    println!("ParaGraph's error is lower across the board.");
}
