//! Table I — Benchmark Applications: application name, number of kernels and
//! domain.

use pg_bench::{bench_scale, print_header};
use pg_kernels::catalog;

fn main() {
    print_header("Table I: Benchmark Applications", bench_scale());
    println!("{:<22} {:>11}   Domain", "Application", "Num Kernels");
    println!("{:-<22} {:->11}   {:-<20}", "", "", "");
    let apps = catalog();
    let mut total = 0;
    for app in &apps {
        println!(
            "{:<22} {:>11}   {}",
            app.name,
            app.kernel_count(),
            app.domain.name()
        );
        total += app.kernel_count();
    }
    println!("{:-<22} {:->11}", "", "");
    println!(
        "{:<22} {:>11}   (paper: 9 applications, 17 kernels)",
        "Total", total
    );

    println!("\nPer-kernel inventory:");
    for app in &apps {
        for kernel in &app.kernels {
            println!(
                "  {:<34} collapsible: {:<5} sizes: {}",
                kernel.full_name(),
                kernel.collapsible,
                kernel
                    .sizes
                    .iter()
                    .map(|p| format!("{}({} values)", p.name, p.sweep.len()))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
}
