//! Machine-readable baseline for the observability tier: what tracing and
//! stage histograms add to a warm `Engine::advise` round trip.
//!
//! Three configurations of the same warm engine:
//!
//! * **off** — the hub disabled (`PARAGRAPH_OBS=0` equivalent): every span
//!   site degrades to one atomic load, the budget the serving bench's
//!   within-3% acceptance rides on;
//! * **hist** — hub enabled, request untraced: stage histograms record but
//!   no span storage is touched (the common case under 1-in-N sampling);
//! * **traced** — hub enabled plus a full per-request trace (begin, spans
//!   in every tier, commit), the worst case a sampled request pays.
//!
//! Besides the criterion output, the results are written to
//! `BENCH_obs.json` at the repository root so future PRs can track the
//! overhead. Set `PARAGRAPH_BENCH_SMOKE=1` for the CI smoke run: one
//! repetition, no JSON rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_engine::{AdviseRequest, Engine};
use pg_perfsim::Platform;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("PARAGRAPH_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Median of `reps` wall-clock samples from `f`, in microseconds.
fn median_wall_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct KernelCase {
    kernel: String,
    off_wall_us: f64,
    hist_wall_us: f64,
    traced_wall_us: f64,
    /// `(hist - off) / off`: the histogram-only overhead every request
    /// pays with the hub on.
    hist_overhead_fraction: f64,
    /// `(traced - off) / off`: the full span-collection overhead a
    /// sampled request pays.
    traced_overhead_fraction: f64,
}

#[derive(serde::Serialize)]
struct Aggregate {
    cases: usize,
    mean_hist_overhead_fraction: f64,
    mean_traced_overhead_fraction: f64,
    /// The documented overhead budget: full tracing must stay under 10%
    /// of the warm advise round trip (the disabled path is covered by the
    /// serve bench's within-3% throughput criterion).
    traced_within_target: bool,
}

#[derive(serde::Serialize)]
struct BenchReport {
    schema: u32,
    kernels: Vec<KernelCase>,
    aggregate: Aggregate,
}

fn traced_advise(engine: &Engine, request: &AdviseRequest) {
    let o = pg_obs::obs();
    let trace = o.begin_trace("bench");
    let root = o.trace_span(&trace, pg_obs::Stage::Request, None);
    let reports =
        engine.advise_many_traced(std::slice::from_ref(request), std::slice::from_ref(&trace));
    assert!(reports[0].is_ok());
    root.finish();
    o.commit(trace);
}

fn bench_obs_overhead(c: &mut Criterion) {
    let o = pg_obs::obs();
    let engine = Engine::builder().platform(Platform::SummitV100).build();
    let request = AdviseRequest::catalog("MM/matmul");
    engine.advise(&request).unwrap(); // warm frontend + analysis memo

    o.set_enabled(false);
    c.bench_function("advise_matmul_obs_off", |b| {
        b.iter(|| engine.advise(std::hint::black_box(&request)).unwrap())
    });
    o.set_enabled(true);
    c.bench_function("advise_matmul_obs_hist", |b| {
        b.iter(|| engine.advise(std::hint::black_box(&request)).unwrap())
    });
    o.set_sample_every(1);
    c.bench_function("advise_matmul_obs_traced", |b| {
        b.iter(|| traced_advise(&engine, std::hint::black_box(&request)))
    });
    o.clear_traces();
}

fn record_json(c: &mut Criterion) {
    let reps = if smoke() { 9 } else { 51 };
    let o = pg_obs::obs();
    let engine = Engine::builder().platform(Platform::SummitV100).build();
    let kernel_names = if smoke() {
        vec!["MM/matmul".to_string()]
    } else {
        pg_kernels::all_kernels()
            .iter()
            .map(|k| k.full_name())
            .collect()
    };

    let mut kernels = Vec::new();
    for name in kernel_names {
        let request = AdviseRequest::catalog(&name);
        engine.advise(&request).unwrap(); // warm

        o.set_enabled(false);
        let off = median_wall_us(reps, || {
            engine.advise(&request).unwrap();
        });
        o.set_enabled(true);
        let hist = median_wall_us(reps, || {
            engine.advise(&request).unwrap();
        });
        o.set_sample_every(1);
        let traced = median_wall_us(reps, || {
            traced_advise(&engine, &request);
        });
        kernels.push(KernelCase {
            kernel: name,
            off_wall_us: off,
            hist_wall_us: hist,
            traced_wall_us: traced,
            hist_overhead_fraction: (hist - off) / off.max(1e-9),
            traced_overhead_fraction: (traced - off) / off.max(1e-9),
        });
    }
    o.clear_traces();

    let mean = |f: fn(&KernelCase) -> f64| {
        kernels.iter().map(f).sum::<f64>() / kernels.len().max(1) as f64
    };
    let aggregate = Aggregate {
        cases: kernels.len(),
        mean_hist_overhead_fraction: mean(|k| k.hist_overhead_fraction),
        mean_traced_overhead_fraction: mean(|k| k.traced_overhead_fraction),
        traced_within_target: mean(|k| k.traced_overhead_fraction) < 0.10,
    };
    println!(
        "obs overhead: {} kernels, hist {:+.2}%, traced {:+.2}% vs disabled (traced target < 10%: {})",
        aggregate.cases,
        aggregate.mean_hist_overhead_fraction * 100.0,
        aggregate.mean_traced_overhead_fraction * 100.0,
        aggregate.traced_within_target,
    );
    let report = BenchReport {
        schema: 1,
        kernels,
        aggregate,
    };
    if smoke() {
        // The CI smoke run proves the harness executes end to end; keep the
        // committed baseline intact.
        return;
    }
    let json = serde_json::to_string(&report).expect("bench report serialises");
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json"),
        json,
    )
    .expect("write BENCH_obs.json at the repository root");
    let _ = c;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead, record_json
}
criterion_main!(benches);
