//! Figure 2 — The augmented-AST examples of the paper: a declaration plus
//! assignment, an if/else statement and a for loop, with the added edge types
//! and the Child-edge weights.

use paragraph_core::{build, BuilderConfig, EdgeType, Representation};
use pg_bench::{bench_scale, print_header};
use pg_frontend::parse;

fn show(title: &str, source: &str) {
    println!("\n--- {title}");
    println!("source: {}", source.trim());
    let ast = parse(source).unwrap();
    let graph = build(
        &ast,
        &BuilderConfig::for_representation(Representation::ParaGraph),
    );
    let stats = graph.stats();
    println!(
        "vertices: {}   edges: {}   syntax tokens: {}",
        stats.nodes, stats.edges, stats.token_nodes
    );
    for ty in EdgeType::ALL {
        let count = stats.edges_per_type[ty.index()];
        if count > 0 {
            println!("  {:<10} {count} edges", ty.name());
        }
    }
    println!("  weighted Child edges (weight != 1):");
    for e in graph.edges_of_type(EdgeType::Child) {
        if (e.weight - 1.0).abs() > 1e-9 {
            println!(
                "    {} -> {}  weight {}",
                graph.node(e.src).label,
                graph.node(e.dst).label,
                e.weight
            );
        }
    }
}

fn main() {
    print_header("Figure 2: ParaGraph construction examples", bench_scale());

    show(
        "Declaration + assignment (left of Figure 2)",
        "void f() { int x; x = 50; }",
    );
    show(
        "If statement inside a 50-iteration loop (middle of Figure 2)",
        "void f(int x) { for (int i = 0; i < 50; i++) { if (x > 50) { x = 1; } else { x = 2; } } }",
    );
    show(
        "For loop with 50 iterations (right of Figure 2)",
        "void f() { for (int i = 0; i < 50; i++) { int y; y = y + 1; } }",
    );

    println!();
    println!("Expected (paper): the for-loop's cond/body/inc Child edges carry weight 50;");
    println!("the if-branches carry half of the enclosing weight (25 inside the loop).");
}
