//! Figure 9 — Predicted vs actual runtime on the NVIDIA V100, for ParaGraph
//! and COMPOFF. The paper shows a scatter plot; the harness reports the
//! correlation of each model and prints a downsampled predicted/actual table.

use paragraph_core::Representation;
use pg_bench::{bench_scale, compoff_run, paragraph_run, print_header};
use pg_perfsim::Platform;
use pg_tensor::metrics;
use std::collections::HashMap;

fn pearson(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len() as f64;
    if x.is_empty() {
        return 0.0;
    }
    let mx = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my = y.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        let da = a as f64 - mx;
        let db = b as f64 - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())) as f32
}

fn main() {
    let scale = bench_scale();
    print_header(
        "Figure 9: predicted vs actual runtime on NVIDIA V100 (ParaGraph and COMPOFF)",
        scale,
    );

    let pg = paragraph_run(Platform::SummitV100, Representation::ParaGraph, scale);
    let co = compoff_run(Platform::SummitV100, scale);
    let co_by_id: HashMap<usize, f32> = co
        .validation
        .iter()
        .map(|p| (p.id, p.predicted_ms))
        .collect();

    let mut rows: Vec<(f32, f32, f32)> = pg
        .validation
        .iter()
        .filter_map(|p| {
            co_by_id
                .get(&p.id)
                .map(|&c| (p.actual_ms, p.predicted_ms, c))
        })
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let actual: Vec<f32> = rows.iter().map(|r| r.0).collect();
    let pg_pred: Vec<f32> = rows.iter().map(|r| r.1).collect();
    let co_pred: Vec<f32> = rows.iter().map(|r| r.2).collect();

    println!("validation points: {}", rows.len());
    println!(
        "Pearson correlation (predicted vs actual): ParaGraph {:.4}, COMPOFF {:.4}",
        pearson(&pg_pred, &actual),
        pearson(&co_pred, &actual)
    );
    println!(
        "R^2:                                      ParaGraph {:.4}, COMPOFF {:.4}",
        metrics::r2(&pg_pred, &actual),
        metrics::r2(&co_pred, &actual)
    );

    println!(
        "\n{:>16} {:>18} {:>18}   (downsampled scatter data, ms)",
        "actual", "ParaGraph pred", "COMPOFF pred"
    );
    let step = (rows.len() / 25).max(1);
    for row in rows.iter().step_by(step) {
        println!("{:>16.3} {:>18.3} {:>18.3}", row.0, row.1, row.2);
    }

    println!("\nPaper shape: both models correlate strongly with the actual runtime, with");
    println!("ParaGraph showing the tighter correlation.");
}
