//! Machine-readable baseline for the search subsystem: beam vs exhaustive
//! tuning over the densified launch grid, on every catalogue kernel × both
//! platform families.
//!
//! For each case the harness records how many evaluations and how much
//! wall time each strategy spends to reach the exhaustive-search optimum
//! (exhaustive search *is* the optimum by definition; the beam ends its run
//! having either matched the optimal predicted runtime bit-for-bit or
//! missed it, which the report records). Besides the criterion output, the
//! results are written to `BENCH_tune.json` at the repository root so
//! future PRs can track the pruning power of the search. Set
//! `PARAGRAPH_BENCH_SMOKE=1` for the CI smoke run: two kernels, one
//! repetition, no JSON rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_advisor::ParallelismBudget;
use pg_engine::Engine;
use pg_perfsim::Platform;
use pg_tune::{StrategySpec, TuneEngine, TuneReport, TuneRequest};
use serde::Serialize;
use std::time::Instant;

const PLATFORMS: [Platform; 2] = [Platform::SummitV100, Platform::SummitPower9];

fn smoke() -> bool {
    std::env::var("PARAGRAPH_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The densified grid the acceptance criterion is measured on (the same
/// grid `crates/tune/tests/search_equivalence.rs` asserts over).
fn dense_budget(platform: Platform) -> ParallelismBudget {
    platform.default_budget().densified(4)
}

/// The tight beam the acceptance criterion uses.
fn beam_spec() -> StrategySpec {
    StrategySpec::Beam {
        width: 1,
        patience: 1,
    }
}

fn request(kernel: &str, platform: Platform, strategy: StrategySpec) -> TuneRequest {
    TuneRequest::catalog(kernel)
        .with_budget(dense_budget(platform))
        .with_strategy(strategy)
}

fn kernels() -> Vec<String> {
    let all: Vec<String> = pg_kernels::all_kernels()
        .iter()
        .map(|k| k.full_name())
        .collect();
    if smoke() {
        all.into_iter().take(2).collect()
    } else {
        all
    }
}

/// Median wall-clock milliseconds of `reps` tuning runs.
fn median_wall_ms(engine: &Engine, request: &TuneRequest, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            engine.tune(request).expect("tuning run");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct Case {
    kernel: String,
    platform: String,
    candidates: u64,
    exhaustive_evaluations: u64,
    beam_evaluations: u64,
    /// `beam_evaluations / exhaustive_evaluations` — the acceptance
    /// criterion requires ≤ 0.5 everywhere.
    eval_fraction: f64,
    exhaustive_wall_ms: f64,
    beam_wall_ms: f64,
    beam_generations: u64,
    /// Whether the beam's best equals the exhaustive optimum bit-for-bit.
    beam_found_optimum: bool,
}

#[derive(Serialize)]
struct Aggregate {
    cases: usize,
    beam_found_optimum_everywhere: bool,
    max_eval_fraction: f64,
    mean_eval_fraction: f64,
    exhaustive_wall_ms_total: f64,
    beam_wall_ms_total: f64,
}

#[derive(Serialize)]
struct BenchReport {
    schema: u32,
    grid_densify: u32,
    beam: String,
    cases: Vec<Case>,
    aggregate: Aggregate,
}

fn bench_strategies(c: &mut Criterion) {
    let engine = Engine::builder().platform(Platform::SummitV100).build();
    let exhaustive = request("MM/matmul", Platform::SummitV100, StrategySpec::Exhaustive);
    let beam = request("MM/matmul", Platform::SummitV100, beam_spec());
    // Warm the frontend cache so criterion times the search, not the parse.
    engine.tune(&exhaustive).unwrap();
    c.bench_function("tune_exhaustive_mm_dense", |b| {
        b.iter(|| engine.tune(std::hint::black_box(&exhaustive)).unwrap())
    });
    c.bench_function("tune_beam_mm_dense", |b| {
        b.iter(|| engine.tune(std::hint::black_box(&beam)).unwrap())
    });
}

fn record_json(c: &mut Criterion) {
    let reps = if smoke() { 1 } else { 5 };
    let mut cases = Vec::new();
    for platform in PLATFORMS {
        let engine = Engine::builder().platform(platform).build();
        for kernel in kernels() {
            let exhaustive_request = request(&kernel, platform, StrategySpec::Exhaustive);
            let beam_request = request(&kernel, platform, beam_spec());
            let exhaustive: TuneReport = engine.tune(&exhaustive_request).unwrap();
            let beam: TuneReport = engine.tune(&beam_request).unwrap();
            let exhaustive_wall = median_wall_ms(&engine, &exhaustive_request, reps);
            let beam_wall = median_wall_ms(&engine, &beam_request, reps);
            cases.push(Case {
                kernel: kernel.clone(),
                platform: platform.slug().to_string(),
                candidates: exhaustive.space.candidates,
                exhaustive_evaluations: exhaustive.space.evaluated,
                beam_evaluations: beam.space.evaluated,
                eval_fraction: beam.space.evaluated as f64
                    / exhaustive.space.evaluated.max(1) as f64,
                exhaustive_wall_ms: exhaustive_wall,
                beam_wall_ms: beam_wall,
                beam_generations: beam.generations,
                beam_found_optimum: beam.best.predicted_ms.to_bits()
                    == exhaustive.best.predicted_ms.to_bits(),
            });
        }
    }
    let aggregate = Aggregate {
        cases: cases.len(),
        beam_found_optimum_everywhere: cases.iter().all(|c| c.beam_found_optimum),
        max_eval_fraction: cases.iter().map(|c| c.eval_fraction).fold(0.0, f64::max),
        mean_eval_fraction: cases.iter().map(|c| c.eval_fraction).sum::<f64>()
            / cases.len().max(1) as f64,
        exhaustive_wall_ms_total: cases.iter().map(|c| c.exhaustive_wall_ms).sum(),
        beam_wall_ms_total: cases.iter().map(|c| c.beam_wall_ms).sum(),
    };
    println!(
        "tune search: {} cases, beam found the optimum everywhere: {}, eval fraction mean {:.2} max {:.2}, wall {:.1}ms -> {:.1}ms",
        aggregate.cases,
        aggregate.beam_found_optimum_everywhere,
        aggregate.mean_eval_fraction,
        aggregate.max_eval_fraction,
        aggregate.exhaustive_wall_ms_total,
        aggregate.beam_wall_ms_total,
    );
    let report = BenchReport {
        schema: 1,
        grid_densify: 4,
        beam: "width=1 patience=1".to_string(),
        cases,
        aggregate,
    };
    if smoke() {
        // The CI smoke run proves the harness executes end to end; keep the
        // committed baseline intact.
        return;
    }
    let json = serde_json::to_string(&report).expect("bench report serialises");
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tune.json"),
        json,
    )
    .expect("write BENCH_tune.json at the repository root");
    let _ = c;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies, record_json
}
criterion_main!(benches);
