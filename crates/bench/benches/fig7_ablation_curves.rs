//! Figure 7 — Validation RMSE per epoch while training on the MI50 data
//! points with the Raw AST, the Augmented AST and the full ParaGraph
//! representation.

use paragraph_core::Representation;
use pg_bench::{bench_scale, paragraph_run, print_header};
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header(
        "Figure 7: Validation RMSE per epoch on AMD MI50 (ablation of the representation)",
        scale,
    );

    let runs: Vec<_> = Representation::ALL
        .iter()
        .map(|&r| (r, paragraph_run(Platform::CoronaMi50, r, scale)))
        .collect();

    let epochs = runs
        .iter()
        .map(|(_, r)| r.history.epochs.len())
        .max()
        .unwrap_or(0);
    println!(
        "{:>6} {:>16} {:>16} {:>16}   (validation RMSE, ms)",
        "epoch", "ParaGraph", "Augmented AST", "Raw AST"
    );
    for e in 0..epochs {
        let cell = |repr: Representation| -> String {
            runs.iter()
                .find(|(r, _)| *r == repr)
                .and_then(|(_, run)| run.history.epochs.get(e))
                .map(|s| format!("{:.1}", s.val_rmse_ms))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "{:>6} {:>16} {:>16} {:>16}",
            e + 1,
            cell(Representation::ParaGraph),
            cell(Representation::AugmentedAst),
            cell(Representation::RawAst)
        );
    }

    println!();
    for (repr, run) in &runs {
        println!("{:<16} final RMSE {:.1} ms", repr.name(), run.rmse_ms);
    }
    println!("\nPaper shape: ParaGraph converges to a considerably smaller error than the");
    println!("Augmented AST, which in turn ends below the Raw AST.");
}
