//! Table II — Data points collected on each accelerator: count, runtime
//! range and standard deviation.

use pg_bench::{bench_scale, dataset_outcome, print_header};
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header("Table II: Data points collected on each accelerator", scale);
    println!(
        "{:<10} {:<22} {:>11}   {:<26} {:>12}",
        "Cluster", "Platform", "#DataPoints", "Runtime Range (ms)", "Std. Dev."
    );
    println!(
        "{:-<10} {:-<22} {:->11}   {:-<26} {:->12}",
        "", "", "", "", ""
    );

    // Paper values for side-by-side comparison.
    let paper: [(&str, &str, &str, &str); 4] = [
        ("Summit", "IBM POWER9 (CPU)", "13,023", "[0.23 - 736,798]"),
        ("Summit", "NVIDIA V100 (GPU)", "26,040", "[0.035 - 30,174]"),
        (
            "Corona",
            "AMD EPYC7401 (CPU)",
            "17,681",
            "[0.024 - 291,627]",
        ),
        ("Corona", "AMD MI50 (GPU)", "26,668", "[0.448 - 46,913]"),
    ];

    for (i, platform) in Platform::ALL.iter().enumerate() {
        let outcome = dataset_outcome(*platform, scale);
        let stats = outcome.dataset.stats();
        println!(
            "{:<10} {:<22} {:>11}   {:<26} {:>12.1}",
            stats.cluster,
            stats.platform_name,
            stats.data_points,
            stats.range_string(),
            stats.std_dev_ms
        );
        println!(
            "{:<10} {:<22} {:>11}   {:<26}   (paper)",
            "", paper[i].1, paper[i].2, paper[i].3
        );
    }
    println!();
    println!("Note: absolute counts and ranges depend on the dataset scale; the paper's");
    println!("qualitative shape is preserved (GPU datasets are larger than CPU datasets");
    println!("because four of the six variants target the GPU, and CPU runtimes span a");
    println!("much wider range than GPU runtimes).");
}
