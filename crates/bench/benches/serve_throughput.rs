//! Closed-loop load generator for the serving tier.
//!
//! Starts an in-process `pg-serve` server over a GNN-backed engine and
//! hammers it with K keep-alive client threads, each issuing its next
//! request as soon as the previous response lands (closed loop). Two
//! server configurations are compared over identical traffic:
//!
//! * **batched** — the production micro-batcher (max-batch 64, 1 ms flush
//!   window): concurrent requests coalesce into shared
//!   `Engine::advise_many` calls;
//! * **per-request** — max-batch 1: every request runs its own engine
//!   call, the pre-serving baseline shape.
//!
//! Besides the criterion registration, the explicit pass records p50/p99
//! latency and throughput to `BENCH_serve.json` at the repository root
//! (schema 2: the schema-1 16-client batched/per-request comparison is
//! kept verbatim, plus a `sweep` over 16/256/4096 concurrent keep-alive
//! connections against the event loop, recording req/s, p50/p99, the
//! coalesced-batch size histogram, and the server thread count).
//! `PARAGRAPH_BENCH_SMOKE=1` runs tiny counts and skips the JSON rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_advisor::LaunchConfig;
use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};
use pg_engine::{AdviseRequest, Engine};
use pg_gnn::{GnnBackend, TrainConfig, TrainedModel};
use pg_perfsim::Platform;
use pg_serve::{BatchConfig, MetricsSnapshot, ServeConfig, Server, BATCH_SIZE_BUCKETS};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PLATFORM: Platform = Platform::SummitV100;

fn smoke() -> bool {
    std::env::var("PARAGRAPH_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn trained_bundle() -> TrainedModel {
    let ds = collect_platform(
        PLATFORM,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 3,
            noise_sigma: 0.02,
        },
    );
    TrainedModel::fit(&ds, &TrainConfig::fast()).unwrap().0
}

fn request_bodies() -> Vec<String> {
    let launches = [
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
        LaunchConfig {
            teams: 40,
            threads: 256,
        },
    ];
    ["MM/matmul", "MV/matvec", "Transpose/transpose"]
        .iter()
        .flat_map(|kernel| {
            launches.iter().map(|&launch| {
                serde_json::to_string(&AdviseRequest::catalog(*kernel).with_launch(launch)).unwrap()
            })
        })
        .collect()
}

/// One keep-alive connection issuing `count` requests; returns per-request
/// latencies in milliseconds.
fn closed_loop_client(addr: SocketAddr, bodies: &[String], count: usize) -> Vec<f64> {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut latencies = Vec::with_capacity(count);
    for i in 0..count {
        let body = &bodies[i % bodies.len()];
        let started = Instant::now();
        stream
            .write_all(
                format!(
                    "POST /advise HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        // Read the response: headers, then Content-Length body bytes.
        let mut length = 0usize;
        let mut status_ok = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if line.starts_with("HTTP/1.1") {
                status_ok = line.contains(" 200 ");
            }
            if let Some(v) = line.strip_prefix("Content-Length: ") {
                length = v.parse().unwrap();
            }
        }
        let mut payload = vec![0u8; length];
        reader.read_exact(&mut payload).unwrap();
        assert!(status_ok, "{}", String::from_utf8_lossy(&payload));
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

struct LoadOutcome {
    latencies_ms: Vec<f64>,
    wall_s: f64,
    metrics: MetricsSnapshot,
    server_threads: usize,
}

/// Run `clients` closed-loop connections of `per_client` requests against
/// a fresh server with the given batch policy.
fn run_load(
    engine: &Arc<Engine>,
    batch: BatchConfig,
    clients: usize,
    per_client: usize,
) -> LoadOutcome {
    let server = Server::start(
        Arc::clone(engine),
        ServeConfig {
            max_inflight: clients * 2,
            max_connections: clients + 64,
            batch,
            ..ServeConfig::default()
        },
    )
    .expect("bench server starts");
    let server_threads = server.io_and_worker_threads();
    let addr = server.addr();
    let bodies = request_bodies();
    // Warm the engine's frontend cache so both configurations measure the
    // serving path, not first-parse noise.
    closed_loop_client(addr, &bodies, bodies.len());

    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|i| {
            let bodies = bodies.clone();
            // Offset each client's cycle so concurrent batches mix kernels.
            let bodies: Vec<String> = (0..bodies.len())
                .map(|j| bodies[(i + j) % bodies.len()].clone())
                .collect();
            // Small stacks keep a 4096-client sweep point affordable.
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || closed_loop_client(addr, &bodies, per_client))
                .expect("spawn bench client")
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * per_client);
    for thread in threads {
        latencies_ms.extend(thread.join().unwrap());
    }
    let wall_s = started.elapsed().as_secs_f64();
    let metrics = server.shutdown();
    LoadOutcome {
        latencies_ms,
        wall_s,
        metrics,
        server_threads,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct ConfigStats {
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    req_per_s: f64,
    batches: u64,
    coalesced_batches: u64,
    max_batch_size: u64,
}

impl ConfigStats {
    fn of(outcome: &LoadOutcome) -> Self {
        let mut sorted = outcome.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self {
            requests: sorted.len(),
            p50_ms: percentile(&sorted, 0.50),
            p99_ms: percentile(&sorted, 0.99),
            req_per_s: sorted.len() as f64 / outcome.wall_s.max(1e-9),
            batches: outcome.metrics.batches,
            coalesced_batches: outcome.metrics.coalesced_batches,
            max_batch_size: outcome.metrics.max_batch_size,
        }
    }
}

/// One point of the concurrency sweep: the batched event-loop server under
/// `clients` simultaneous keep-alive connections.
#[derive(Serialize)]
struct SweepPoint {
    clients: usize,
    requests: usize,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Coalesced-batch size histogram: count of batches with size <= the
    /// matching entry of `batch_size_bounds`; the final slot is overflow.
    batch_size_buckets: Vec<u64>,
    coalesced_batches: u64,
    max_batch_size: u64,
    /// Server-side threads (1 event-loop + fixed worker pool) — constant
    /// across the sweep; the connection count is carried by epoll, not
    /// threads.
    threads: usize,
    connections_opened: u64,
    connections_shed: u64,
}

impl SweepPoint {
    fn of(clients: usize, outcome: &LoadOutcome) -> Self {
        let mut sorted = outcome.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self {
            clients,
            requests: sorted.len(),
            req_per_s: sorted.len() as f64 / outcome.wall_s.max(1e-9),
            p50_ms: percentile(&sorted, 0.50),
            p99_ms: percentile(&sorted, 0.99),
            batch_size_buckets: outcome.metrics.batch_size_buckets.clone(),
            coalesced_batches: outcome.metrics.coalesced_batches,
            max_batch_size: outcome.metrics.max_batch_size,
            threads: outcome.server_threads,
            connections_opened: outcome.metrics.connections_opened,
            connections_shed: outcome.metrics.connections_shed,
        }
    }
}

#[derive(Serialize)]
struct BenchReport {
    schema: u32,
    platform: String,
    backend: String,
    clients: usize,
    requests_per_client: usize,
    batched: ConfigStats,
    per_request: ConfigStats,
    throughput_speedup: f64,
    /// Bucket upper bounds for every `batch_size_buckets` vector below;
    /// the vectors carry one extra overflow slot.
    batch_size_bounds: Vec<u64>,
    sweep: Vec<SweepPoint>,
}

fn record_json(c: &mut Criterion) {
    let (clients, per_client) = if smoke() { (4, 5) } else { (16, 60) };
    let engine = Arc::new(
        Engine::builder()
            .platform(PLATFORM)
            .backend(GnnBackend::new(trained_bundle(), PLATFORM))
            .build(),
    );

    let batched = run_load(
        &engine,
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            queue_depth: 1024,
        },
        clients,
        per_client,
    );
    let per_request = run_load(
        &engine,
        BatchConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_depth: 1024,
        },
        clients,
        per_client,
    );
    assert!(
        batched.metrics.coalesced_batches > 0,
        "the batched configuration never coalesced — load generator too weak"
    );
    assert_eq!(per_request.metrics.max_batch_size, 1);

    // Concurrency sweep: same batched policy, rising connection counts.
    // Per-client request counts shrink as the client count grows so every
    // point issues a comparable total volume.
    let sweep_points: &[(usize, usize)] = if smoke() {
        &[(4, 5), (8, 4)]
    } else {
        &[(16, 60), (256, 16), (4096, 2)]
    };
    let sweep: Vec<SweepPoint> = sweep_points
        .iter()
        .map(|&(clients, per_client)| {
            let outcome = run_load(
                &engine,
                BatchConfig {
                    max_batch: 256,
                    max_wait: Duration::from_millis(1),
                    queue_depth: (clients * 4).max(1024),
                },
                clients,
                per_client,
            );
            let point = SweepPoint::of(clients, &outcome);
            println!(
                "sweep {} clients: {:.0} req/s p50 {:.2}ms p99 {:.2}ms \
                 (max batch {}, {} threads)",
                point.clients,
                point.req_per_s,
                point.p50_ms,
                point.p99_ms,
                point.max_batch_size,
                point.threads,
            );
            point
        })
        .collect();

    let report = BenchReport {
        schema: 2,
        platform: PLATFORM.name().to_string(),
        backend: "gnn".to_string(),
        clients,
        requests_per_client: per_client,
        batched: ConfigStats::of(&batched),
        per_request: ConfigStats::of(&per_request),
        throughput_speedup: (batched.latencies_ms.len() as f64 / batched.wall_s)
            / (per_request.latencies_ms.len() as f64 / per_request.wall_s).max(1e-9),
        batch_size_bounds: BATCH_SIZE_BUCKETS.to_vec(),
        sweep,
    };
    println!(
        "serve load ({} clients x {} reqs): batched p50 {:.2}ms p99 {:.2}ms {:.0} req/s \
         (max batch {}), per-request p50 {:.2}ms p99 {:.2}ms {:.0} req/s -> {:.2}x throughput",
        report.clients,
        report.requests_per_client,
        report.batched.p50_ms,
        report.batched.p99_ms,
        report.batched.req_per_s,
        report.batched.max_batch_size,
        report.per_request.p50_ms,
        report.per_request.p99_ms,
        report.per_request.req_per_s,
        report.throughput_speedup,
    );
    if smoke() {
        // Smoke proves the harness runs end to end; timings are noise.
        return;
    }
    let json = serde_json::to_string(&report).expect("bench report serialises");
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json"),
        json,
    )
    .expect("write BENCH_serve.json at the repository root");
    let _ = c;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = record_json
}
criterion_main!(benches);
