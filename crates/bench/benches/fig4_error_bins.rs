//! Figure 4 — Prediction error per runtime bin, for all four accelerators.
//!
//! The paper bins the validation samples by their true runtime into eleven
//! 10-second bins (the last one open-ended) and reports the mean relative
//! error per bin. The simulated runtimes cover a smaller absolute range than
//! the paper's measurements, so the bin width is derived from the data (one
//! tenth of the validation range) while keeping the same eleven-bin layout.

use paragraph_core::Representation;
use pg_bench::{bench_scale, paragraph_run, print_header};
use pg_gnn::binned_relative_error;
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header("Figure 4: Prediction error per runtime bin", scale);

    const NUM_BINS: usize = 10;
    for platform in Platform::ALL {
        let run = paragraph_run(platform, Representation::ParaGraph, scale);
        let bin_width = (run.runtime_range_ms / NUM_BINS as f32).max(1e-3);
        let bins = binned_relative_error(&run.validation, bin_width, NUM_BINS);
        println!("\n{}  (bin width {:.1} ms)", run.platform_name, bin_width);
        println!("  {:<18} {:>8} {:>16}", "bin", "samples", "relative error");
        for bin in &bins {
            println!(
                "  {:<18} {:>8} {:>16.4}",
                bin.label, bin.count, bin.relative_error
            );
        }
        let max_err = bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| b.relative_error)
            .fold(0.0f32, f32::max);
        println!(
            "  worst-bin relative error: {:.4}  (paper: < 0.10 in every bin)",
            max_err
        );
    }
}
