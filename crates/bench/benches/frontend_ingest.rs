//! Machine-readable baseline for the untrusted-input frontend: what
//! parsing costs per catalogue kernel and per generated program, what the
//! `ParseOptions` budget checks add to the happy path, and how fast the
//! budget rejects hostile input (a bomb must be refused in time
//! proportional to the *budget*, never to the input).
//!
//! Besides the criterion output, results are written to
//! `BENCH_frontend_ingest.json` at the repository root so future PRs can
//! track ingestion cost. Set `PARAGRAPH_BENCH_SMOKE=1` for the CI smoke
//! run: few cases, one repetition, no JSON rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_advisor::{instantiate, LaunchConfig, Variant};
use pg_frontend::testing::generate_program;
use pg_frontend::{parse_with_options, ParseOptions};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("PARAGRAPH_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Median of `reps` wall-clock samples from `f`, in microseconds.
fn median_wall_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The catalogue matmul's first applicable variant, fully instantiated —
/// the representative honest-request source.
fn matmul_source() -> String {
    let kernel = pg_kernels::find_kernel("MM/matmul").unwrap();
    let instance = instantiate(
        &kernel,
        Variant::applicable_variants(&kernel)[0],
        &kernel.default_sizes(),
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
    );
    instance.source
}

fn paren_bomb(depth: usize) -> String {
    format!(
        "void bomb() {{ int x = {}1{}; }}",
        "(".repeat(depth),
        ")".repeat(depth)
    )
}

#[derive(serde::Serialize)]
struct ParseCase {
    name: String,
    source_bytes: usize,
    budgeted_wall_us: f64,
    unlimited_wall_us: f64,
    /// `(budgeted - unlimited) / unlimited`: what enforcing the caps costs
    /// an honest request. Negative values are measurement noise.
    budget_overhead_fraction: f64,
}

#[derive(serde::Serialize)]
struct RejectCase {
    name: String,
    source_bytes: usize,
    reject_wall_us: f64,
}

#[derive(serde::Serialize)]
struct Aggregate {
    parse_cases: usize,
    reject_cases: usize,
    mean_budget_overhead_fraction: f64,
    reject_wall_us_max: f64,
    /// Acceptance: rejection cost is bounded by the parse budget, never by
    /// the attacker — the worst admissible input (1 MiB of source, capped
    /// token count) must be refused within 10 ms of linear lexing work.
    rejection_is_budget_bounded: bool,
}

#[derive(serde::Serialize)]
struct BenchReport {
    schema: u32,
    parse: Vec<ParseCase>,
    reject: Vec<RejectCase>,
    aggregate: Aggregate,
}

fn bench_frontend(c: &mut Criterion) {
    let source = matmul_source();
    c.bench_function("parse_matmul_budgeted", |b| {
        b.iter(|| parse_with_options(std::hint::black_box(&source), ParseOptions::default()))
    });
    let generated = generate_program(42);
    c.bench_function("parse_generated_budgeted", |b| {
        b.iter(|| parse_with_options(std::hint::black_box(&generated), ParseOptions::default()))
    });
    let bomb = paren_bomb(100_000);
    c.bench_function("reject_paren_bomb_100k", |b| {
        b.iter(|| {
            parse_with_options(std::hint::black_box(&bomb), ParseOptions::default())
                .expect_err("bomb is rejected")
        })
    });
}

fn record_json(c: &mut Criterion) {
    let _ = c;
    let reps = if smoke() { 1 } else { 31 };
    let seeds: Vec<u64> = if smoke() { vec![1] } else { (0..8).collect() };

    let mut parse = Vec::new();
    let mut sources: Vec<(String, String)> =
        vec![("catalog:MM/matmul".to_string(), matmul_source())];
    for seed in seeds {
        sources.push((format!("generated:{seed}"), generate_program(seed)));
    }
    for (name, source) in sources {
        let budgeted = median_wall_us(reps, || {
            parse_with_options(&source, ParseOptions::default()).expect("source parses");
        });
        let unlimited = median_wall_us(reps, || {
            parse_with_options(&source, ParseOptions::unlimited()).expect("source parses");
        });
        parse.push(ParseCase {
            name,
            source_bytes: source.len(),
            budgeted_wall_us: budgeted,
            unlimited_wall_us: unlimited,
            budget_overhead_fraction: (budgeted - unlimited) / unlimited.max(1e-9),
        });
    }

    // Hostile inputs: rejection time must track the budget, not the bomb.
    let mut reject = Vec::new();
    let depths: &[usize] = if smoke() {
        &[10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &depth in depths {
        let bomb = paren_bomb(depth);
        let wall = median_wall_us(reps, || {
            parse_with_options(&bomb, ParseOptions::default()).expect_err("bomb rejected");
        });
        reject.push(RejectCase {
            name: format!("paren_bomb:{depth}"),
            source_bytes: bomb.len(),
            reject_wall_us: wall,
        });
    }
    let oversized = "x".repeat((1 << 20) + 1);
    let wall = median_wall_us(reps, || {
        parse_with_options(&oversized, ParseOptions::default()).expect_err("too large");
    });
    reject.push(RejectCase {
        name: "oversized_1mib_plus_one".to_string(),
        source_bytes: oversized.len(),
        reject_wall_us: wall,
    });

    let mean_overhead = parse
        .iter()
        .map(|p| p.budget_overhead_fraction)
        .sum::<f64>()
        / parse.len().max(1) as f64;
    let reject_max = reject
        .iter()
        .map(|r| r.reject_wall_us)
        .fold(0.0f64, f64::max);
    let aggregate = Aggregate {
        parse_cases: parse.len(),
        reject_cases: reject.len(),
        mean_budget_overhead_fraction: mean_overhead,
        reject_wall_us_max: reject_max,
        rejection_is_budget_bounded: reject_max < 10_000.0,
    };
    println!(
        "frontend ingest: {} parse cases, budget overhead mean {:+.2}%; {} hostile cases, slowest rejection {:.1}us (budget-bounded: {})",
        aggregate.parse_cases,
        aggregate.mean_budget_overhead_fraction * 100.0,
        aggregate.reject_cases,
        aggregate.reject_wall_us_max,
        aggregate.rejection_is_budget_bounded,
    );
    let report = BenchReport {
        schema: 1,
        parse,
        reject,
        aggregate,
    };
    if smoke() {
        // The CI smoke run proves the harness executes end to end; keep
        // the committed baseline intact.
        return;
    }
    let json = serde_json::to_string(&report).expect("bench report serialises");
    std::fs::write(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_frontend_ingest.json"
        ),
        json,
    )
    .expect("write BENCH_frontend_ingest.json");
}

criterion_group!(benches, bench_frontend, record_json);
criterion_main!(benches);
