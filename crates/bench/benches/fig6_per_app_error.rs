//! Figure 6 — Mean relative error per application, per accelerator: shows the
//! model is not biased toward one application.

use paragraph_core::Representation;
use pg_bench::{bench_scale, paragraph_run, print_header};
use pg_gnn::per_application_error;
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header("Figure 6: Error rate per application", scale);

    for platform in Platform::ALL {
        let run = paragraph_run(platform, Representation::ParaGraph, scale);
        let per_app = per_application_error(&run.validation);
        println!("\n{}", run.platform_name);
        println!(
            "  {:<18} {:>8} {:>14}",
            "application", "samples", "error rate"
        );
        for (app, err, count) in &per_app {
            println!("  {:<18} {:>8} {:>14.4}", app, count, err);
        }
        let worst = per_app
            .iter()
            .filter(|(_, _, c)| *c > 0)
            .map(|(_, e, _)| *e)
            .fold(0.0f32, f32::max);
        println!(
            "  worst application error: {:.4}  (paper: at most ~0.042, most below 0.01)",
            worst
        );
    }
}
