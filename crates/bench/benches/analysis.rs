//! Machine-readable baseline for the legality gate: what one `pg_analyze`
//! pass costs per catalogue kernel, and what the gate adds to a warm
//! `Engine::advise` round trip with the analysis memo populated (the
//! serving-path number — the gate's acceptance target is < 5% overhead).
//!
//! Besides the criterion output, the results are written to
//! `BENCH_analyze.json` at the repository root so future PRs can track the
//! analysis cost. Set `PARAGRAPH_BENCH_SMOKE=1` for the CI smoke run: two
//! kernels, one repetition, no JSON rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_advisor::{instantiate, LaunchConfig, Variant};
use pg_analyze::{analyze_source_tolerant, catalogue_tolerances};
use pg_engine::{AdviseRequest, Engine};
use pg_perfsim::Platform;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("PARAGRAPH_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn kernels() -> Vec<pg_kernels::KernelTemplate> {
    let all = pg_kernels::all_kernels();
    if smoke() {
        all.into_iter().take(2).collect()
    } else {
        all
    }
}

/// Median of `reps` wall-clock samples from `f`, in microseconds.
fn median_wall_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct AnalysisCase {
    kernel: String,
    variant: String,
    source_lines: usize,
    diagnostics: usize,
    analyze_wall_us: f64,
}

#[derive(serde::Serialize)]
struct AdviseCase {
    kernel: String,
    gated_wall_us: f64,
    ungated_wall_us: f64,
    /// `(gated - ungated) / ungated` on a warm engine; the acceptance
    /// target is < 0.05. Negative values are measurement noise.
    overhead_fraction: f64,
}

#[derive(serde::Serialize)]
struct Aggregate {
    analysis_cases: usize,
    advise_cases: usize,
    analyze_wall_us_median: f64,
    analyze_wall_us_max: f64,
    mean_overhead_fraction: f64,
    /// The acceptance criterion: mean warm-advise overhead < 5%.
    overhead_within_target: bool,
}

#[derive(serde::Serialize)]
struct BenchReport {
    schema: u32,
    analysis: Vec<AnalysisCase>,
    advise: Vec<AdviseCase>,
    aggregate: Aggregate,
}

fn bench_analysis(c: &mut Criterion) {
    let kernel = pg_kernels::find_kernel("MM/matmul").unwrap();
    let instance = instantiate(
        &kernel,
        Variant::applicable_variants(&kernel)[0],
        &kernel.default_sizes(),
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
    );
    c.bench_function("analyze_matmul", |b| {
        b.iter(|| analyze_source_tolerant(std::hint::black_box(&instance.source), &[]))
    });

    let request = AdviseRequest::catalog("MM/matmul");
    let gated = Engine::builder().platform(Platform::SummitV100).build();
    let ungated = Engine::builder()
        .platform(Platform::SummitV100)
        .analysis_gate(false)
        .build();
    gated.advise(&request).unwrap();
    ungated.advise(&request).unwrap();
    c.bench_function("advise_matmul_gated_warm", |b| {
        b.iter(|| gated.advise(std::hint::black_box(&request)).unwrap())
    });
    c.bench_function("advise_matmul_ungated_warm", |b| {
        b.iter(|| ungated.advise(std::hint::black_box(&request)).unwrap())
    });
}

fn record_json(c: &mut Criterion) {
    let reps = if smoke() { 1 } else { 31 };
    let launch = LaunchConfig {
        teams: 80,
        threads: 128,
    };

    // Per-kernel cold analysis cost, one case per variant.
    let mut analysis = Vec::new();
    for kernel in kernels() {
        let full_name = kernel.full_name();
        let tolerated = catalogue_tolerances(&full_name);
        let sizes = kernel.default_sizes();
        for variant in Variant::applicable_variants(&kernel) {
            let instance = instantiate(&kernel, variant, &sizes, launch);
            let report = analyze_source_tolerant(&instance.source, tolerated);
            let wall = median_wall_us(reps, || {
                analyze_source_tolerant(&instance.source, tolerated);
            });
            analysis.push(AnalysisCase {
                kernel: full_name.clone(),
                variant: variant.name().to_string(),
                source_lines: instance.source.lines().count(),
                diagnostics: report.diagnostics.len(),
                analyze_wall_us: wall,
            });
        }
    }

    // Warm advise overhead, gate on vs off, on the same platform.
    let gated = Engine::builder().platform(Platform::SummitV100).build();
    let ungated = Engine::builder()
        .platform(Platform::SummitV100)
        .analysis_gate(false)
        .build();
    let mut advise = Vec::new();
    for kernel in kernels() {
        let request = AdviseRequest::catalog(kernel.full_name());
        gated.advise(&request).unwrap(); // warm frontend + analysis memo
        ungated.advise(&request).unwrap();
        let gated_wall = median_wall_us(reps, || {
            gated.advise(&request).unwrap();
        });
        let ungated_wall = median_wall_us(reps, || {
            ungated.advise(&request).unwrap();
        });
        advise.push(AdviseCase {
            kernel: kernel.full_name(),
            gated_wall_us: gated_wall,
            ungated_wall_us: ungated_wall,
            overhead_fraction: (gated_wall - ungated_wall) / ungated_wall.max(1e-9),
        });
    }

    let mut walls: Vec<f64> = analysis.iter().map(|a| a.analyze_wall_us).collect();
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean_overhead =
        advise.iter().map(|a| a.overhead_fraction).sum::<f64>() / advise.len().max(1) as f64;
    let aggregate = Aggregate {
        analysis_cases: analysis.len(),
        advise_cases: advise.len(),
        analyze_wall_us_median: walls[walls.len() / 2],
        analyze_wall_us_max: walls.last().copied().unwrap_or(0.0),
        mean_overhead_fraction: mean_overhead,
        overhead_within_target: mean_overhead < 0.05,
    };
    println!(
        "analysis: {} variant cases, median {:.1}us max {:.1}us per pass; warm advise overhead mean {:+.2}% (target < 5%: {})",
        aggregate.analysis_cases,
        aggregate.analyze_wall_us_median,
        aggregate.analyze_wall_us_max,
        aggregate.mean_overhead_fraction * 100.0,
        aggregate.overhead_within_target,
    );
    let report = BenchReport {
        schema: 1,
        analysis,
        advise,
        aggregate,
    };
    if smoke() {
        // The CI smoke run proves the harness executes end to end; keep the
        // committed baseline intact.
        return;
    }
    let json = serde_json::to_string(&report).expect("bench report serialises");
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analyze.json"),
        json,
    )
    .expect("write BENCH_analyze.json at the repository root");
    let _ = c;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analysis, record_json
}
criterion_main!(benches);
