//! Table III — Experimental results: RMSE and normalised RMSE of the
//! ParaGraph model on every accelerator.

use paragraph_core::Representation;
use pg_bench::{bench_scale, paragraph_run, print_header, scientific};
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header(
        "Table III: ParaGraph runtime-prediction error per accelerator",
        scale,
    );

    // Paper values for comparison.
    let paper: [(&str, &str, &str); 4] = [
        ("IBM POWER9 (CPU)", "4325", "6 x 10^-3"),
        ("NVIDIA V100 (GPU)", "280", "9 x 10^-3"),
        ("AMD EPYC7401 (CPU)", "968", "4 x 10^-3"),
        ("AMD MI50 (GPU)", "510", "1 x 10^-2"),
    ];

    println!(
        "{:<22} {:>12} {:>14}   {:>12} {:>14}",
        "Platform", "RMSE (ms)", "Norm-RMSE", "paper RMSE", "paper Norm"
    );
    println!(
        "{:-<22} {:->12} {:->14}   {:->12} {:->14}",
        "", "", "", "", ""
    );
    for (i, platform) in Platform::ALL.iter().enumerate() {
        let run = paragraph_run(*platform, Representation::ParaGraph, scale);
        println!(
            "{:<22} {:>12.1} {:>14}   {:>12} {:>14}",
            run.platform_name,
            run.rmse_ms,
            scientific(run.norm_rmse),
            paper[i].1,
            paper[i].2,
        );
    }
    println!();
    println!("Normalised RMSE divides the RMSE by the runtime range of the validation");
    println!("set, so it is comparable across platforms even though the simulated");
    println!("absolute runtimes differ from the paper's Summit/Corona measurements.");
}
