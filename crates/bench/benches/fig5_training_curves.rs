//! Figure 5 — Validation normalised RMSE per training epoch for the four
//! accelerators (training-stability curves).

use paragraph_core::Representation;
use pg_bench::{bench_scale, paragraph_run, print_header};
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header(
        "Figure 5: Normalised RMSE per epoch (ParaGraph model)",
        scale,
    );

    let runs: Vec<_> = Platform::ALL
        .iter()
        .map(|&p| paragraph_run(p, Representation::ParaGraph, scale))
        .collect();

    let epochs = runs
        .iter()
        .map(|r| r.history.epochs.len())
        .max()
        .unwrap_or(0);
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "epoch", "V100", "MI50", "POWER9", "EPYC"
    );
    let by_name = |name: &str| runs.iter().find(|r| r.platform_name.contains(name));
    for e in 0..epochs {
        let cell = |name: &str| -> String {
            by_name(name)
                .and_then(|r| r.history.epochs.get(e))
                .map(|s| format!("{:.4}", s.val_norm_rmse))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>14}",
            e + 1,
            cell("V100"),
            cell("MI50"),
            cell("POWER9"),
            cell("EPYC")
        );
    }

    println!();
    for run in &runs {
        let first = run
            .history
            .epochs
            .first()
            .map(|s| s.val_norm_rmse)
            .unwrap_or(0.0);
        let last = run
            .history
            .epochs
            .last()
            .map(|s| s.val_norm_rmse)
            .unwrap_or(0.0);
        println!(
            "{:<22} first epoch {:.4} -> final epoch {:.4}   converges: {}",
            run.platform_name,
            first,
            last,
            last < first
        );
    }
    println!("\nPaper shape: early-epoch fluctuations, then convergence to a small value.");
}
