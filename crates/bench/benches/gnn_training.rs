//! Machine-readable perf baseline for the batched GNN execution path.
//!
//! Measures, on the Fast-scale SummitV100 dataset with the default model
//! configuration:
//!
//! * **training epoch wall-time** — the pre-batching per-sample loop
//!   (`train_prepared_per_sample`: one tape per sample, rayon fan-out,
//!   hand-averaged gradients) vs the batched loop (`train_prepared`: one
//!   disjoint-union forward/backward per mini-batch on a reused tape);
//! * **per-sample forward+backward** — `loss_and_gradients` per sample vs
//!   one batched pass over the same samples, normalised per sample;
//! * **engine GNN-backend sweep advise** — a launch-sweep `advise` through a
//!   per-instance backend (the default rayon `predict_batch`) vs the batched
//!   `GnnBackend::predict_batch` override;
//! * **graph-size sweep** — one batched forward+backward at 1×/4×/16×
//!   disjoint-union scale, per-edge push dispatch (`ForcePush`, the
//!   edge-list-walk baseline) vs the density-dispatched sparse path, so the
//!   asymptotic behaviour of CSR SpMM over edge-list walks is measured
//!   rather than asserted.
//!
//! Besides the criterion output, the comparisons are re-timed explicitly
//! (median of several runs) and written to `BENCH_gnn.json` (schema 2) at
//! the repository root so future PRs have a trajectory to compare against.
//! Set `PARAGRAPH_BENCH_SMOKE=1` for the CI smoke run: fewer repetitions and
//! a reduced epoch body, same code paths, no JSON rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};
use pg_engine::{AdviseRequest, Engine, EngineError, PredictionContext, RuntimePredictor};
use pg_gnn::{
    prepare, reference, train_prepared, BatchedGraph, GnnBackend, ModelConfig, ParaGraphModel,
    PreparedDataset, PreparedGraph, SparseDispatch, TrainConfig, TrainedModel,
};
use pg_perfsim::Platform;
use pg_tensor::Tape;
use serde::Serialize;
use std::time::Instant;

const PLATFORM: Platform = Platform::SummitV100;

fn smoke() -> bool {
    std::env::var("PARAGRAPH_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 1,
        batch_size: 16,
        model: ModelConfig::default(),
        ..TrainConfig::default()
    }
}

fn prepared_dataset() -> PreparedDataset {
    let ds = collect_platform(
        PLATFORM,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 3,
            noise_sigma: 0.02,
        },
    );
    prepare(&ds, train_config().representation, train_config().seed)
}

/// The pre-batching engine path as a backend: per-instance prediction
/// through the legacy (fresh-tape, cloned-parameter) forward pass, batched
/// only by the trait's default rayon fan-out. This is the sweep baseline.
struct PerInstanceLegacyGnn(TrainedModel);

impl RuntimePredictor for PerInstanceLegacyGnn {
    fn name(&self) -> &str {
        "gnn-per-instance-legacy"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &pg_advisor::KernelInstance,
    ) -> Result<f64, EngineError> {
        let bundle = &self.0;
        let graph = ctx.relational_graph(
            &instance.source,
            bundle.representation,
            instance.launch.teams,
            instance.launch.threads,
        )?;
        let side = bundle
            .side_scaler
            .transform(&[instance.launch.teams as f32, instance.launch.threads as f32]);
        let encoded = reference::predict_graph(&bundle.model, &graph, [side[0], side[1]]);
        Ok(f64::from(bundle.target_transform.decode(encoded).max(0.0)))
    }
}

fn sweep_request() -> AdviseRequest {
    AdviseRequest::source(
        "bench/saxpy",
        "void saxpy(float *x, float *y) {\n\
         #pragma omp target teams distribute parallel for\n\
         for (int i = 0; i < 65536; i++) { y[i] = y[i] + 2.0 * x[i]; }\n}",
    )
}

/// Median wall-clock seconds of `reps` runs each of `baseline` and
/// `batched`, interleaved (B-A-A-B per round) so slow drift of the host —
/// noisy neighbours, thermal throttling — biases neither side.
fn interleaved_medians(
    reps: usize,
    mut baseline: impl FnMut(),
    mut batched: impl FnMut(),
) -> (f64, f64) {
    let mut base_samples = Vec::with_capacity(reps);
    let mut batch_samples = Vec::with_capacity(reps);
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    for round in 0..reps.max(1) {
        if round % 2 == 0 {
            base_samples.push(time(&mut baseline));
            batch_samples.push(time(&mut batched));
        } else {
            batch_samples.push(time(&mut batched));
            base_samples.push(time(&mut baseline));
        }
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    (median(&mut base_samples), median(&mut batch_samples))
}

#[derive(Serialize)]
struct Comparison {
    baseline_ms: f64,
    batched_ms: f64,
    speedup: f64,
}

impl Comparison {
    fn of(baseline_secs: f64, batched_secs: f64) -> Self {
        Self {
            baseline_ms: baseline_secs * 1e3,
            batched_ms: batched_secs * 1e3,
            speedup: baseline_secs / batched_secs.max(1e-12),
        }
    }
}

/// Median wall-clock seconds of `reps` runs of one closure.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One forward+backward over the `batch_size` training batch under each
/// RGAT dispatch mode, milliseconds.
#[derive(Serialize)]
struct DispatchModes {
    push_ms: f64,
    pull_ms: f64,
    auto_ms: f64,
}

/// One graph-size sweep point: the training batch replicated `scale`× into
/// a disjoint union, timed as per-edge push baseline vs the
/// density-dispatched sparse path (one fwd+bwd each).
#[derive(Serialize)]
struct SweepEntry {
    scale: usize,
    graphs: usize,
    nodes: usize,
    edges: usize,
    forward_backward: Comparison,
}

#[derive(Serialize)]
struct BenchReport {
    schema: u32,
    platform: String,
    dataset_scale: String,
    samples: usize,
    train_samples: usize,
    batch_size: usize,
    /// One training epoch (gradient steps + validation pass), milliseconds.
    training_epoch: Comparison,
    /// Forward+backward per sample (batch of `batch_size`), milliseconds.
    forward_backward_per_sample: Comparison,
    /// One launch-sweep advise through the GNN backend, milliseconds.
    sweep_advise: Comparison,
    sweep_candidates: usize,
    /// Schema 2: per-dispatch-mode fwd+bwd timings on the training batch.
    dispatch_modes: DispatchModes,
    /// Schema 2: batched-sparse vs per-edge baseline across union scales.
    size_sweep: Vec<SweepEntry>,
}

fn bench_training_epoch(c: &mut Criterion) {
    let prepared = prepared_dataset();
    let config = train_config();
    c.bench_function("gnn_training_epoch_per_sample", |b| {
        b.iter(|| reference::train_prepared(std::hint::black_box(&prepared), &config).unwrap())
    });
    c.bench_function("gnn_training_epoch_batched", |b| {
        b.iter(|| train_prepared(std::hint::black_box(&prepared), &config).unwrap())
    });
}

fn bench_forward_backward(c: &mut Criterion) {
    let prepared = prepared_dataset();
    let config = train_config();
    let model = ParaGraphModel::new(config.model, config.seed);
    let indices: Vec<usize> = prepared
        .train_idx
        .iter()
        .copied()
        .take(config.batch_size)
        .collect();
    c.bench_function("gnn_forward_backward_per_sample_x16", |b| {
        b.iter(|| {
            for &i in &indices {
                std::hint::black_box(reference::loss_and_gradients(&model, &prepared.samples[i]));
            }
        })
    });
    let items: Vec<(&PreparedGraph, [f32; 2])> = indices
        .iter()
        .map(|&i| (&prepared.prepared[i], prepared.samples[i].side))
        .collect();
    let targets: Vec<f32> = indices
        .iter()
        .map(|&i| prepared.samples[i].target)
        .collect();
    let batch = BatchedGraph::build(&items);
    let mut tape = Tape::new();
    c.bench_function("gnn_forward_backward_batched_x16", |b| {
        b.iter(|| {
            tape.reset();
            let (_, loss, _) =
                model.forward_batched(&mut tape, std::hint::black_box(&batch), Some(&targets));
            tape.backward(loss.unwrap());
        })
    });
    for (name, dispatch) in [
        ("gnn_forward_backward_push_x16", SparseDispatch::ForcePush),
        ("gnn_forward_backward_pull_x16", SparseDispatch::ForcePull),
    ] {
        let mut mode_tape = Tape::new();
        c.bench_function(name, |b| {
            b.iter(|| {
                mode_tape.reset();
                let (_, loss, _) = model.forward_batched_with_dispatch(
                    &mut mode_tape,
                    std::hint::black_box(&batch),
                    Some(&targets),
                    dispatch,
                );
                mode_tape.backward(loss.unwrap());
            })
        });
    }
}

fn bench_sweep_advise(c: &mut Criterion) {
    let bundle = trained_bundle();
    let request = sweep_request();
    let per_instance = Engine::builder()
        .platform(PLATFORM)
        .backend(PerInstanceLegacyGnn(bundle.clone()))
        .build();
    per_instance.advise(&request).unwrap(); // warm the frontend cache
    c.bench_function("engine_gnn_sweep_advise_per_instance", |b| {
        b.iter(|| per_instance.advise(std::hint::black_box(&request)).unwrap())
    });
    let batched = Engine::builder()
        .platform(PLATFORM)
        .backend(GnnBackend::new(bundle, PLATFORM))
        .build();
    batched.advise(&request).unwrap();
    c.bench_function("engine_gnn_sweep_advise_batched", |b| {
        b.iter(|| batched.advise(std::hint::black_box(&request)).unwrap())
    });
}

fn trained_bundle() -> TrainedModel {
    let ds = collect_platform(
        PLATFORM,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 3,
            noise_sigma: 0.02,
        },
    );
    let (bundle, _) = TrainedModel::fit(
        &ds,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::fast()
        },
    )
    .unwrap();
    bundle
}

/// Explicit median-of-N timing of the three comparisons, recorded to
/// `BENCH_gnn.json` so the speedups are machine-readable across PRs.
fn record_json(c: &mut Criterion) {
    let reps = if smoke() { 1 } else { 5 };
    let prepared = prepared_dataset();
    let config = train_config();

    let (epoch_per_sample, epoch_batched) = interleaved_medians(
        reps,
        || {
            reference::train_prepared(&prepared, &config).unwrap();
        },
        || {
            train_prepared(&prepared, &config).unwrap();
        },
    );

    let model = ParaGraphModel::new(config.model, config.seed);
    let indices: Vec<usize> = prepared
        .train_idx
        .iter()
        .copied()
        .take(config.batch_size)
        .collect();
    let fb_reps = if smoke() { 3 } else { 20 };
    let items: Vec<(&PreparedGraph, [f32; 2])> = indices
        .iter()
        .map(|&i| (&prepared.prepared[i], prepared.samples[i].side))
        .collect();
    let targets: Vec<f32> = indices
        .iter()
        .map(|&i| prepared.samples[i].target)
        .collect();
    let batch = BatchedGraph::build(&items);
    let mut tape = Tape::new();
    let (fb_per_sample, fb_batched) = interleaved_medians(
        fb_reps,
        || {
            for &i in &indices {
                std::hint::black_box(reference::loss_and_gradients(&model, &prepared.samples[i]));
            }
        },
        || {
            tape.reset();
            let (_, loss, _) = model.forward_batched(&mut tape, &batch, Some(&targets));
            tape.backward(loss.unwrap());
        },
    );

    let bundle = trained_bundle();
    let request = sweep_request();
    let per_instance = Engine::builder()
        .platform(PLATFORM)
        .backend(PerInstanceLegacyGnn(bundle.clone()))
        .build();
    let candidates = per_instance.advise(&request).unwrap().rankings.len();
    let sweep_reps = if smoke() { 3 } else { 30 };
    let batched_engine = Engine::builder()
        .platform(PLATFORM)
        .backend(GnnBackend::new(bundle, PLATFORM))
        .build();
    batched_engine.advise(&request).unwrap();
    let (sweep_per_instance, sweep_batched) = interleaved_medians(
        sweep_reps,
        || {
            per_instance.advise(&request).unwrap();
        },
        || {
            batched_engine.advise(&request).unwrap();
        },
    );

    // Per-dispatch-mode fwd+bwd on the 1x training batch. Each mode gets its
    // own tape so arena reuse inside one mode cannot subsidise another.
    let mode_ms = |dispatch: SparseDispatch| {
        let mut mode_tape = Tape::new();
        let mut pass = || {
            mode_tape.reset();
            let (_, loss, _) = model.forward_batched_with_dispatch(
                &mut mode_tape,
                &batch,
                Some(&targets),
                dispatch,
            );
            mode_tape.backward(loss.unwrap());
        };
        pass(); // warm the arena so the timing sees steady-state reuse
        median_secs(fb_reps, pass) * 1e3
    };
    let dispatch_modes = DispatchModes {
        push_ms: mode_ms(SparseDispatch::ForcePush),
        pull_ms: mode_ms(SparseDispatch::ForcePull),
        auto_ms: mode_ms(SparseDispatch::Auto),
    };

    // Graph-size sweep: replicate the training batch into 1x/4x/16x disjoint
    // unions and time one fwd+bwd per dispatch strategy. ForcePush walks the
    // per-edge gather/scatter path (the pre-CSR baseline shape); Auto is the
    // shipping density dispatch.
    let mut size_sweep = Vec::new();
    for scale in [1usize, 4, 16] {
        let mut sweep_items: Vec<(&PreparedGraph, [f32; 2])> =
            Vec::with_capacity(items.len() * scale);
        let mut sweep_targets: Vec<f32> = Vec::with_capacity(targets.len() * scale);
        for _ in 0..scale {
            sweep_items.extend(items.iter().copied());
            sweep_targets.extend(targets.iter().copied());
        }
        let sweep_batch = BatchedGraph::build(&sweep_items);
        let edges: usize = sweep_batch.relations.iter().map(|r| r.len()).sum();
        let sweep_fb_reps = if smoke() { 1 } else { (fb_reps / scale).max(3) };
        let mut push_tape = Tape::new();
        let mut auto_tape = Tape::new();
        let mut push_pass = || {
            push_tape.reset();
            let (_, loss, _) = model.forward_batched_with_dispatch(
                &mut push_tape,
                &sweep_batch,
                Some(&sweep_targets),
                SparseDispatch::ForcePush,
            );
            push_tape.backward(loss.unwrap());
        };
        let mut auto_pass = || {
            auto_tape.reset();
            let (_, loss, _) = model.forward_batched_with_dispatch(
                &mut auto_tape,
                &sweep_batch,
                Some(&sweep_targets),
                SparseDispatch::Auto,
            );
            auto_tape.backward(loss.unwrap());
        };
        // Warm both arenas: with few reps at the big scales, a cold first
        // pass is dominated by allocation, not the kernels under test.
        push_pass();
        auto_pass();
        let (per_edge, sparse) = interleaved_medians(sweep_fb_reps, push_pass, auto_pass);
        size_sweep.push(SweepEntry {
            scale,
            graphs: sweep_batch.batch_size(),
            nodes: sweep_batch.total_nodes(),
            edges,
            forward_backward: Comparison::of(per_edge, sparse),
        });
    }

    let per_sample_count = indices.len().max(1) as f64;
    let report = BenchReport {
        schema: 2,
        platform: PLATFORM.name().to_string(),
        dataset_scale: "Fast".to_string(),
        samples: prepared.samples.len(),
        train_samples: prepared.train_idx.len(),
        batch_size: config.batch_size,
        training_epoch: Comparison::of(epoch_per_sample, epoch_batched),
        forward_backward_per_sample: Comparison::of(
            fb_per_sample / per_sample_count,
            fb_batched / per_sample_count,
        ),
        sweep_advise: Comparison::of(sweep_per_instance, sweep_batched),
        sweep_candidates: candidates,
        dispatch_modes,
        size_sweep,
    };
    println!(
        "gnn perf: epoch {:.1}ms -> {:.1}ms ({:.2}x), fwd+bwd/sample {:.3}ms -> {:.3}ms ({:.2}x), sweep {:.2}ms -> {:.2}ms ({:.2}x)",
        report.training_epoch.baseline_ms,
        report.training_epoch.batched_ms,
        report.training_epoch.speedup,
        report.forward_backward_per_sample.baseline_ms,
        report.forward_backward_per_sample.batched_ms,
        report.forward_backward_per_sample.speedup,
        report.sweep_advise.baseline_ms,
        report.sweep_advise.batched_ms,
        report.sweep_advise.speedup,
    );
    println!(
        "gnn dispatch (fwd+bwd x{} batch): push {:.2}ms, pull {:.2}ms, auto {:.2}ms",
        config.batch_size,
        report.dispatch_modes.push_ms,
        report.dispatch_modes.pull_ms,
        report.dispatch_modes.auto_ms,
    );
    for entry in &report.size_sweep {
        println!(
            "gnn size sweep x{} ({} graphs, {} nodes, {} edges): per-edge {:.2}ms -> sparse {:.2}ms ({:.2}x)",
            entry.scale,
            entry.graphs,
            entry.nodes,
            entry.edges,
            entry.forward_backward.baseline_ms,
            entry.forward_backward.batched_ms,
            entry.forward_backward.speedup,
        );
    }
    if smoke() {
        // The CI smoke run proves the harness executes end to end but its
        // timings are noise; keep the committed baseline intact.
        return;
    }
    let json = serde_json::to_string(&report).expect("bench report serialises");
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gnn.json"),
        json,
    )
    .expect("write BENCH_gnn.json at the repository root");
    let _ = c; // criterion config is irrelevant to the explicit timing pass
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_epoch, bench_forward_backward, bench_sweep_advise, record_json
}
criterion_main!(benches);
