//! Criterion micro-benchmarks of the engine serving hot path: cold-cache vs
//! warm-cache `advise` latency, batched variant-prediction throughput, and
//! a launch-sweep advise through the batched GNN backend — the baseline
//! future serving PRs (sharding, async, ensembles) compare against.

use criterion::{criterion_group, criterion_main, Criterion};
use pg_advisor::LaunchConfig;
use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};
use pg_engine::{AdviseRequest, Engine, SimulatorBackend};
use pg_gnn::{GnnBackend, TrainConfig, TrainedModel};
use pg_perfsim::Platform;

fn advise_request() -> AdviseRequest {
    AdviseRequest::catalog("MM/matmul").with_launch(LaunchConfig {
        teams: 80,
        threads: 128,
    })
}

/// Every iteration builds a fresh engine: parse + graph construction run
/// cold on each request.
fn bench_advise_cold(c: &mut Criterion) {
    let request = advise_request();
    c.bench_function("engine_advise_cold", |b| {
        b.iter(|| {
            let engine = Engine::builder()
                .platform(Platform::SummitV100)
                .backend(SimulatorBackend::noise_free())
                .build();
            engine.advise(std::hint::black_box(&request)).unwrap()
        })
    });
}

/// One engine serves every iteration: after the first request the frontend
/// cache absorbs the parse, so this measures the memoized serving path.
fn bench_advise_cached(c: &mut Criterion) {
    let engine = Engine::builder()
        .platform(Platform::SummitV100)
        .backend(SimulatorBackend::noise_free())
        .build();
    let request = advise_request();
    engine.advise(&request).unwrap(); // warm the cache
    c.bench_function("engine_advise_cached", |b| {
        b.iter(|| engine.advise(std::hint::black_box(&request)).unwrap())
    });
}

/// Full launch sweep on a warm engine: 4 variants x 9 launches = 36
/// candidates per request, fanned out by `predict_batch`.
fn bench_batched_variant_throughput(c: &mut Criterion) {
    let engine = Engine::builder()
        .platform(Platform::SummitV100)
        .backend(SimulatorBackend::noise_free())
        .build();
    let request = AdviseRequest::catalog("MM/matmul");
    engine.advise(&request).unwrap(); // warm the cache
    c.bench_function("engine_advise_sweep_36_candidates", |b| {
        b.iter(|| engine.advise(std::hint::black_box(&request)).unwrap())
    });
}

/// Launch-sweep advise through the trained RGAT backend on a warm engine:
/// every candidate graph is cached, so this isolates the batched
/// `GnnBackend::predict_batch` forward pass (one disjoint-union tape pass
/// per request). The machine-readable speedup against the per-instance
/// path is recorded by the `gnn_training` bench in `BENCH_gnn.json`.
fn bench_gnn_backend_sweep(c: &mut Criterion) {
    let ds = collect_platform(
        Platform::SummitV100,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 3,
            noise_sigma: 0.02,
        },
    );
    let (bundle, _) = TrainedModel::fit(
        &ds,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::fast()
        },
    )
    .unwrap();
    let engine = Engine::builder()
        .platform(Platform::SummitV100)
        .backend(GnnBackend::new(bundle, Platform::SummitV100))
        .build();
    let request = AdviseRequest::source(
        "bench/saxpy",
        "void saxpy(float *x, float *y) {\n\
         #pragma omp target teams distribute parallel for\n\
         for (int i = 0; i < 65536; i++) { y[i] = y[i] + 2.0 * x[i]; }\n}",
    );
    engine.advise(&request).unwrap(); // warm the frontend cache
    c.bench_function("engine_advise_gnn_sweep_batched", |b| {
        b.iter(|| engine.advise(std::hint::black_box(&request)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_advise_cold, bench_advise_cached, bench_batched_variant_throughput,
        bench_gnn_backend_sweep
}
criterion_main!(benches);
