//! Dataset-generation throughput: cold sweep vs warm resume through the
//! sharded pipeline's shard store, per platform.
//!
//! Uses a private throwaway store so the numbers measure the pipeline, not
//! whatever earlier runs left under `target/paragraph-cache`.

use pg_bench::{bench_scale, pipeline_config, print_header};
use pg_dataset::{generate_platform, ShardStore};
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header("Dataset generation: cold vs warm (sharded pipeline)", scale);

    let dir = std::env::temp_dir().join(format!("pg-dataset-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ShardStore::at(dir.clone());
    let config = pipeline_config(scale);

    println!(
        "{:<22} {:>8} {:>7} {:>12} {:>12} {:>9}",
        "platform", "points", "shards", "cold (ms)", "warm (ms)", "speedup"
    );
    println!(
        "{:-<22} {:->8} {:->7} {:->12} {:->12} {:->9}",
        "", "", "", "", "", ""
    );
    for &platform in Platform::ALL.iter() {
        let cold = generate_platform(platform, &config, &store);
        let warm = generate_platform(platform, &config, &store);
        assert_eq!(
            cold.dataset, warm.dataset,
            "warm resume must be bit-identical to the cold run"
        );
        assert_eq!(warm.summary.shard_misses, 0, "warm run must resume fully");
        println!(
            "{:<22} {:>8} {:>7} {:>12.1} {:>12.1} {:>8.1}x",
            platform.name(),
            cold.summary.points,
            cold.summary.shards_total,
            cold.summary.wall_ms,
            warm.summary.wall_ms,
            cold.summary.wall_ms / warm.summary.wall_ms.max(1e-3)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!("Cold runs measure every instance through the shared engine; warm runs");
    println!("load content-addressed shard artifacts and only re-merge.");
}
