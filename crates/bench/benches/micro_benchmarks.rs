//! Criterion micro-benchmarks of the infrastructure itself: parser
//! throughput, ParaGraph construction, RGAT forward+backward and one
//! simulated runtime measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use paragraph_core::{build, to_relational, BuilderConfig, Representation};
use pg_advisor::{instantiate, LaunchConfig, Variant};
use pg_gnn::{GraphSample, ModelConfig, ParaGraphModel};
use pg_kernels::find_kernel;
use pg_perfsim::{measure, NoiseModel, Platform};

fn matmul_source() -> String {
    let mm = find_kernel("MM/matmul").unwrap();
    let inst = instantiate(
        &mm,
        Variant::GpuCollapseMem,
        &mm.default_sizes(),
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
    );
    inst.source
}

fn bench_parser(c: &mut Criterion) {
    let src = matmul_source();
    c.bench_function("frontend_parse_matmul", |b| {
        b.iter(|| pg_frontend::parse(std::hint::black_box(&src)).unwrap())
    });
}

fn bench_graph_construction(c: &mut Criterion) {
    let src = matmul_source();
    let ast = pg_frontend::parse(&src).unwrap();
    let config = BuilderConfig::for_representation(Representation::ParaGraph).with_launch(80, 128);
    c.bench_function("paragraph_build_matmul", |b| {
        b.iter(|| build(std::hint::black_box(&ast), &config))
    });
}

fn bench_rgat(c: &mut Criterion) {
    let src = matmul_source();
    let ast = pg_frontend::parse(&src).unwrap();
    let graph = to_relational(&build(
        &ast,
        &BuilderConfig::for_representation(Representation::ParaGraph).with_launch(80, 128),
    ));
    let sample = GraphSample {
        graph,
        side: [0.5, 0.5],
        target: 0.3,
    };
    let model = ParaGraphModel::new(ModelConfig::default(), 1);
    c.bench_function("rgat_forward_backward_matmul", |b| {
        b.iter(|| model.loss_and_gradients(std::hint::black_box(&sample)))
    });
    c.bench_function("rgat_inference_matmul", |b| {
        b.iter(|| model.predict(std::hint::black_box(&sample)))
    });
}

fn bench_perfsim(c: &mut Criterion) {
    let mm = find_kernel("MM/matmul").unwrap();
    let inst = instantiate(
        &mm,
        Variant::GpuCollapseMem,
        &mm.default_sizes(),
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
    );
    let noise = NoiseModel::default();
    c.bench_function("perfsim_measure_matmul", |b| {
        b.iter(|| measure(std::hint::black_box(&inst), Platform::SummitV100, &noise).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parser, bench_graph_construction, bench_rgat, bench_perfsim
}
criterion_main!(benches);
