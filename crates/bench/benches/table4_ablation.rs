//! Table IV — Ablation study: RMSE of training with the Raw AST, the
//! Augmented AST and the full ParaGraph representation.

use paragraph_core::Representation;
use pg_bench::{bench_scale, paragraph_run, print_header};
use pg_perfsim::Platform;

fn main() {
    let scale = bench_scale();
    print_header(
        "Table IV: RMSE (ms) of training with and without edges / edge weights",
        scale,
    );

    // Paper values (RMSE in ms) for comparison.
    let paper: [(&str, f32, f32, f32); 4] = [
        ("IBM POWER9 (CPU)", 27593.0, 26860.0, 4325.0),
        ("NVIDIA V100 (GPU)", 2114.0, 786.0, 280.0),
        ("AMD EPYC7401 (CPU)", 11911.0, 9633.0, 968.0),
        ("AMD MI50 (GPU)", 2888.0, 1177.0, 510.0),
    ];

    println!(
        "{:<22} {:>12} {:>12} {:>12}   (measured, ms)",
        "Platform", "Raw AST", "Aug AST", "ParaGraph"
    );
    println!("{:-<22} {:->12} {:->12} {:->12}", "", "", "", "");
    for (i, platform) in Platform::ALL.iter().enumerate() {
        let raw = paragraph_run(*platform, Representation::RawAst, scale);
        let aug = paragraph_run(*platform, Representation::AugmentedAst, scale);
        let full = paragraph_run(*platform, Representation::ParaGraph, scale);
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>12.1}",
            full.platform_name, raw.rmse_ms, aug.rmse_ms, full.rmse_ms
        );
        println!(
            "{:<22} {:>12.0} {:>12.0} {:>12.0}   (paper)",
            "", paper[i].1, paper[i].2, paper[i].3
        );

        let improves_with_edges = aug.rmse_ms <= raw.rmse_ms * 1.05;
        let improves_with_weights = full.rmse_ms < aug.rmse_ms;
        println!(
            "{:<22} edges help: {:<5}  weights help: {:<5}  ParaGraph/RawAST ratio: {:.2}",
            "",
            improves_with_edges,
            improves_with_weights,
            full.rmse_ms / raw.rmse_ms.max(1e-6)
        );
    }
    println!();
    println!("The paper's qualitative finding — Raw AST worst, adding typed edges helps");
    println!("somewhat, adding loop/branch edge weights helps dramatically — is the");
    println!("property this table checks.");
}
