//! # pg-bench
//!
//! Shared infrastructure for the experiment harness. Every `[[bench]]`
//! target of this crate regenerates one table or figure of the paper; the
//! heavy work (dataset generation, model training) is funnelled through the
//! cached runners in this library so that, for example, the training run
//! behind Table III is reused by Figures 4, 5 and 6 instead of being repeated.
//!
//! Scale control:
//! * `PARAGRAPH_FAST=1` — small datasets, few epochs (smoke runs / CI),
//! * default — laptop-scale datasets (about a thousand points per platform),
//! * `PARAGRAPH_FULL_DATASET=1` — approach the paper's dataset size.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use paragraph_core::Representation;
use pg_compoff::{CompoffConfig, CompoffPrediction};
use pg_dataset::{
    generate_platform, DatasetScale, GenerationOutcome, PipelineConfig, PlatformDataset, ShardStore,
};
use pg_gnn::{ModelConfig, PredictionRecord, TrainConfig, TrainingHistory};
use pg_perfsim::Platform;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::PathBuf;

/// Seed shared by every experiment so splits and models are comparable.
pub const EXPERIMENT_SEED: u64 = 42;

/// Scale selected through the environment.
pub fn bench_scale() -> DatasetScale {
    DatasetScale::from_env()
}

/// Dataset pipeline configuration for a scale.
pub fn pipeline_config(scale: DatasetScale) -> PipelineConfig {
    PipelineConfig {
        scale,
        seed: EXPERIMENT_SEED,
        noise_sigma: 0.04,
    }
}

/// Training configuration matched to a dataset scale.
pub fn train_config(scale: DatasetScale, representation: Representation) -> TrainConfig {
    let (epochs, hidden) = match scale {
        DatasetScale::Fast => (8, 12),
        DatasetScale::Default => (24, 20),
        DatasetScale::Full => (60, 32),
    };
    TrainConfig {
        epochs,
        batch_size: 16,
        learning_rate: 2.5e-3,
        seed: EXPERIMENT_SEED,
        representation,
        model: ModelConfig {
            hidden_dim: hidden,
            ..ModelConfig::default()
        },
    }
}

/// COMPOFF configuration matched to a dataset scale.
pub fn compoff_config(scale: DatasetScale) -> CompoffConfig {
    let epochs = match scale {
        DatasetScale::Fast => 20,
        DatasetScale::Default => 60,
        DatasetScale::Full => 120,
    };
    CompoffConfig {
        epochs,
        seed: EXPERIMENT_SEED,
        ..CompoffConfig::default()
    }
}

/// Serializable summary of one ParaGraph training run (what the figures need).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParaGraphRun {
    /// Platform the model was trained for.
    pub platform_name: String,
    /// Representation used (ablation study).
    pub representation: String,
    /// Per-epoch validation metrics.
    pub history: TrainingHistory,
    /// Final validation predictions.
    pub validation: Vec<PredictionRecord>,
    /// Final validation RMSE in ms.
    pub rmse_ms: f32,
    /// Final normalised RMSE.
    pub norm_rmse: f32,
    /// Validation runtime range (ms).
    pub runtime_range_ms: f32,
    /// Number of data points in the dataset.
    pub dataset_size: usize,
}

/// Serializable summary of one COMPOFF training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompoffRun {
    /// Platform the model was trained for.
    pub platform_name: String,
    /// Final validation predictions.
    pub validation: Vec<CompoffPrediction>,
    /// Final validation RMSE in ms.
    pub rmse_ms: f32,
    /// Final normalised RMSE.
    pub norm_rmse: f32,
}

fn cache_dir() -> PathBuf {
    // crates/bench/../../target/paragraph-cache
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("target").join("paragraph-cache"))
        .unwrap_or_else(|| PathBuf::from("target/paragraph-cache"))
}

fn cache_key(parts: &[&str]) -> PathBuf {
    cache_dir().join(format!(
        "{}.json",
        parts.join("_").replace([' ', '(', ')', '/'], "-")
    ))
}

fn load_cached<T: for<'de> Deserialize<'de>>(path: &PathBuf) -> Option<T> {
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn store_cached<T: Serialize>(path: &PathBuf, value: &T) {
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Ok(text) = serde_json::to_string(value) {
        let _ = fs::write(path, text);
    }
}

fn scale_tag(scale: DatasetScale) -> &'static str {
    match scale {
        DatasetScale::Fast => "fast",
        DatasetScale::Default => "default",
        DatasetScale::Full => "full",
    }
}

/// Generate (or re-generate) the dataset of one platform at the given scale.
pub fn dataset(platform: Platform, scale: DatasetScale) -> PlatformDataset {
    dataset_outcome(platform, scale).dataset
}

/// Sharded generation of one platform's dataset against the workspace shard
/// store (`target/paragraph-cache/shards`), printing the run summary so
/// every experiment reports how much was resumed vs. recomputed.
pub fn dataset_outcome(platform: Platform, scale: DatasetScale) -> GenerationOutcome {
    let outcome = generate_platform(
        platform,
        &pipeline_config(scale),
        &ShardStore::default_location(),
    );
    println!("  [shard store] {}", outcome.summary);
    outcome
}

/// Train (or load from cache) the ParaGraph model for one platform and
/// representation.
pub fn paragraph_run(
    platform: Platform,
    representation: Representation,
    scale: DatasetScale,
) -> ParaGraphRun {
    let config = train_config(scale, representation);
    let key = cache_key(&[
        "paragraph",
        platform.name(),
        representation.name(),
        scale_tag(scale),
        &format!("e{}h{}", config.epochs, config.model.hidden_dim),
    ]);
    if let Some(cached) = load_cached::<ParaGraphRun>(&key) {
        return cached;
    }
    let ds = dataset(platform, scale);
    let outcome =
        pg_gnn::train(&ds, &config).expect("bench training configs always have at least one epoch");
    let run = ParaGraphRun {
        platform_name: platform.name().to_string(),
        representation: representation.name().to_string(),
        history: outcome.history,
        validation: outcome.validation,
        rmse_ms: outcome.rmse_ms,
        norm_rmse: outcome.norm_rmse,
        runtime_range_ms: outcome.runtime_range_ms,
        dataset_size: ds.len(),
    };
    store_cached(&key, &run);
    run
}

/// Train (or load from cache) the COMPOFF baseline for one platform.
pub fn compoff_run(platform: Platform, scale: DatasetScale) -> CompoffRun {
    let config = compoff_config(scale);
    let key = cache_key(&[
        "compoff",
        platform.name(),
        scale_tag(scale),
        &format!("e{}", config.epochs),
    ]);
    if let Some(cached) = load_cached::<CompoffRun>(&key) {
        return cached;
    }
    let ds = dataset(platform, scale);
    let outcome = pg_compoff::train(&ds, &config);
    let run = CompoffRun {
        platform_name: platform.name().to_string(),
        validation: outcome.validation,
        rmse_ms: outcome.rmse_ms,
        norm_rmse: outcome.norm_rmse,
    };
    store_cached(&key, &run);
    run
}

/// Format a value in scientific notation the way the paper reports
/// normalised RMSE (e.g. `6 x 10^-3`).
pub fn scientific(value: f32) -> String {
    if value <= 0.0 {
        return "0".to_string();
    }
    let exponent = value.abs().log10().floor() as i32;
    let mantissa = value / 10f32.powi(exponent);
    format!("{mantissa:.1} x 10^{exponent}")
}

/// Print a standard experiment header.
pub fn print_header(title: &str, scale: DatasetScale) {
    println!();
    println!("==========================================================================");
    println!("  {title}");
    println!(
        "  scale: {:?} (set PARAGRAPH_FAST=1 or PARAGRAPH_FULL_DATASET=1 to change)",
        scale
    );
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scientific_formatting() {
        assert_eq!(scientific(0.006), "6.0 x 10^-3");
        assert_eq!(scientific(0.01), "1.0 x 10^-2");
        assert_eq!(scientific(0.0), "0");
    }

    #[test]
    fn cache_round_trip() {
        let path = cache_dir().join("unit-test-cache.json");
        let run = CompoffRun {
            platform_name: "test".into(),
            validation: vec![],
            rmse_ms: 1.0,
            norm_rmse: 0.1,
        };
        store_cached(&path, &run);
        let loaded: CompoffRun = load_cached(&path).unwrap();
        assert_eq!(loaded.platform_name, "test");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn train_configs_scale_with_dataset_scale() {
        let fast = train_config(DatasetScale::Fast, Representation::ParaGraph);
        let full = train_config(DatasetScale::Full, Representation::ParaGraph);
        assert!(fast.epochs < full.epochs);
        assert!(fast.model.hidden_dim < full.model.hidden_dim);
    }
}
