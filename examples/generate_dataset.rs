//! Sharded, resumable dataset generation from the command line.
//!
//! Generates the labelled datasets of all four platforms through the
//! sharded pipeline, printing each run's summary (shard-store hits,
//! frontend-cache activity, wall time). Completed shards persist under
//! `target/paragraph-cache/shards`, so re-running — or resuming an
//! interrupted run — only recomputes what is missing.
//!
//! ```text
//! cargo run --release --example generate_dataset                  # Default scale
//! PARAGRAPH_FAST=1 cargo run --release --example generate_dataset # smoke scale
//! PARAGRAPH_FULL_DATASET=1 ...                                    # paper scale
//! ```
//!
//! `--expect-warm` exits non-zero if any shard had to be recomputed: CI
//! runs the example twice and uses this flag on the second run to guard
//! the resume path against silent regressions.

use paragraph::dataset::{generate_all, DatasetScale, PipelineConfig, ShardStore};

fn main() {
    let expect_warm = std::env::args().any(|a| a == "--expect-warm");
    let config = PipelineConfig {
        scale: DatasetScale::from_env(),
        ..PipelineConfig::default()
    };
    let store = ShardStore::default_location();
    println!(
        "Generating {:?}-scale datasets (shard store: {})",
        config.scale,
        store
            .dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".to_string())
    );

    let outcomes = generate_all(&config, &store);
    let mut recomputed = 0;
    for outcome in &outcomes {
        println!("  {}", outcome.summary);
        recomputed += outcome.summary.shard_misses;
    }
    let total_points: usize = outcomes.iter().map(|o| o.summary.points).sum();
    println!(
        "{total_points} data points across {} platforms",
        outcomes.len()
    );

    if expect_warm && recomputed > 0 {
        eprintln!(
            "error: expected a fully warm resume, but {recomputed} shard(s) \
             missed the store and were recomputed"
        );
        std::process::exit(1);
    }
}
