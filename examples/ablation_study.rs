//! Miniature ablation study (the Table IV / Figure 7 experiment at example
//! scale): train the same GNN on the Raw AST, the Augmented AST and the full
//! ParaGraph representation of a reduced MI50 dataset and compare errors.
//!
//! Run with: `cargo run --release --example ablation_study`

use paragraph::core::Representation;
use paragraph::dataset::{collect_platform, DatasetScale, PipelineConfig};
use paragraph::gnn::{train, TrainConfig};
use paragraph::perfsim::Platform;

fn main() {
    let dataset = collect_platform(
        Platform::CoronaMi50,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 42,
            noise_sigma: 0.04,
        },
    );
    println!(
        "AMD MI50 dataset: {} points, runtime range [{:.3} - {:.1}] ms\n",
        dataset.len(),
        dataset.stats().min_runtime_ms,
        dataset.stats().max_runtime_ms
    );

    println!(
        "{:<16} {:>12} {:>14}   (validation metrics)",
        "representation", "RMSE (ms)", "Norm-RMSE"
    );
    let mut results = Vec::new();
    for representation in Representation::ALL {
        let config = TrainConfig {
            representation,
            epochs: 10,
            ..TrainConfig::fast()
        };
        let outcome = train(&dataset, &config).expect("ablation configs train at least one epoch");
        println!(
            "{:<16} {:>12.1} {:>14.4}",
            representation.name(),
            outcome.rmse_ms,
            outcome.norm_rmse
        );
        results.push((representation, outcome.rmse_ms));
    }

    let raw = results[0].1;
    let paragraph = results[2].1;
    println!(
        "\nParaGraph reduces the Raw-AST RMSE by a factor of {:.2} (paper: ~5-10x).",
        raw / paragraph.max(1e-6)
    );
    println!("Increase the dataset scale and epoch count (see pg-bench) for the full study.");
}
