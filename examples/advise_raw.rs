//! Advise on a raw, never-catalogued OpenMP kernel over the wire.
//!
//! Demonstrates the open-world ingestion path end-to-end: an in-process
//! server on an ephemeral port takes `POST /advise` with a `Source`
//! kernel spec — source text the engine has never seen, straight from the
//! client — and answers with ranked launch configurations plus the
//! legality gate's diagnostics. A second request shows the other side of
//! the trust boundary: a parse bomb is refused with a typed 422
//! diagnostic instead of tying up the server.
//!
//! ```text
//! cargo run --release --example advise_raw
//! ```

use paragraph::engine::Engine;
use paragraph::perfsim::Platform;
use paragraph::serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const RAW_KERNEL: &str = r#"
void stencil(float *a, float *b, int n) {
    #pragma omp parallel for schedule(static)
    for (int i = 1; i < n - 1; i++) {
        b[i] = 0.25 * (a[i - 1] + 2.0 * a[i] + a[i + 1]);
    }
}
"#;

fn post_advise(addr: std::net::SocketAddr, json: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to in-process server");
    stream
        .write_all(
            format!(
                "POST /advise HTTP/1.1\r\nHost: advise-raw\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{json}",
                json.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let engine = Arc::new(Engine::builder().platform(Platform::SummitV100).build());
    let server = Server::start(engine, ServeConfig::default()).expect("start server");
    let addr = server.addr();
    println!("in-process server on http://{addr}");

    // 1. Raw source the catalogue has never seen: parsed, gated, ranked.
    let request = paragraph::engine::AdviseRequest::source("demo/stencil", RAW_KERNEL);
    let json = serde_json::to_string(&request).expect("serialize request");
    let (status, body) = post_advise(addr, &json);
    println!("\nPOST /advise (raw stencil kernel) -> {status}");
    assert_eq!(status, 200, "raw-source advise failed: {body}");
    let report: paragraph::engine::AdviseReport =
        serde_json::from_str(&body).expect("parse report");
    assert!(!report.rankings.is_empty(), "expected ranked candidates");
    println!("ranked {} candidates:", report.rankings.len());
    for (rank, prediction) in report.rankings.iter().enumerate().take(5) {
        println!(
            "  #{:<2} {:<24} predicted {:.3} ms",
            rank + 1,
            prediction.label(),
            prediction.predicted_ms
        );
    }
    if report.diagnostics.is_empty() {
        println!("no analysis diagnostics: the parallelisation is clean");
    } else {
        for diagnostic in &report.diagnostics {
            println!(
                "diagnostic [{}] {:?}: {}",
                diagnostic.rule, diagnostic.severity, diagnostic.message
            );
        }
    }

    // 2. A parse bomb hits the frontend's nesting budget and is refused
    //    with a machine-readable diagnostic — the engine never sees it.
    let bomb = format!(
        "void bomb() {{ int x = {}1{}; }}",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    let request = paragraph::engine::AdviseRequest::source("fuzz/bomb", bomb);
    let json = serde_json::to_string(&request).expect("serialize bomb request");
    let (status, body) = post_advise(addr, &json);
    println!("\nPOST /advise (5000-deep paren bomb) -> {status}");
    println!("rejection body: {body}");
    assert_eq!(status, 422, "parse bomb must be refused");
    assert!(
        body.contains("\"kind\":\"nesting-too-deep\""),
        "rejection must carry the typed diagnostic: {body}"
    );

    let metrics = server.shutdown();
    println!(
        "\nserver drained: advise_ok={} parse_rejected={}",
        metrics.advise_ok, metrics.parse_rejected
    );
}
