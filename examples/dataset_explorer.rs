//! Explore the generated dataset: per-platform statistics (Table II at
//! example scale), the variant mix, and what an individual data point looks
//! like (source, launch configuration, graph size, simulated runtime).
//!
//! Run with: `cargo run --release --example dataset_explorer`

use paragraph::core::Representation;
use paragraph::dataset::{collect_platform, DatasetScale, PipelineConfig};
use paragraph::perfsim::Platform;
use std::collections::BTreeMap;

fn main() {
    let config = PipelineConfig {
        scale: DatasetScale::Fast,
        seed: 42,
        noise_sigma: 0.04,
    };

    println!("Per-platform dataset statistics (reduced scale):\n");
    println!(
        "{:<22} {:>8} {:>14} {:>14} {:>14}",
        "platform", "points", "min (ms)", "max (ms)", "std dev"
    );
    for platform in Platform::ALL {
        let ds = collect_platform(platform, &config);
        let stats = ds.stats();
        println!(
            "{:<22} {:>8} {:>14.3} {:>14.1} {:>14.1}",
            stats.platform_name,
            stats.data_points,
            stats.min_runtime_ms,
            stats.max_runtime_ms,
            stats.std_dev_ms
        );
    }

    // Variant and application mix on the V100.
    let ds = collect_platform(Platform::SummitV100, &config);
    let mut by_variant: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_app: BTreeMap<String, usize> = BTreeMap::new();
    for p in &ds.points {
        *by_variant.entry(p.variant.name()).or_default() += 1;
        *by_app.entry(p.application.clone()).or_default() += 1;
    }
    println!("\nNVIDIA V100 variant mix:");
    for (variant, count) in &by_variant {
        println!("  {variant:<18} {count}");
    }
    println!("NVIDIA V100 application mix:");
    for (app, count) in &by_app {
        println!("  {app:<18} {count}");
    }

    // One data point in detail.
    let point = ds
        .points
        .iter()
        .find(|p| p.application == "MM")
        .unwrap_or(&ds.points[0]);
    println!("\nOne data point in detail:");
    println!(
        "  {} [{}] teams={} threads={} runtime={:.3} ms",
        point.full_name(),
        point.variant.name(),
        point.teams,
        point.threads,
        point.runtime_ms
    );
    let graph = point.build_graph(Representation::ParaGraph);
    let stats = graph.stats();
    println!(
        "  ParaGraph: {} vertices, {} edges, max Child weight {}",
        stats.nodes, stats.edges, stats.max_edge_weight
    );
    println!("  source:\n{}", indent(&point.source, "    "));
}

fn indent(text: &str, prefix: &str) -> String {
    text.lines()
        .map(|l| format!("{prefix}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
