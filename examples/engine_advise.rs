//! The unified engine API: one request shape, three interchangeable
//! prediction backends (analytical simulator, trained RGAT model, COMPOFF
//! baseline), with the frontend memoized across requests.
//!
//! Run with: `cargo run --release --example engine_advise`

use paragraph::compoff;
use paragraph::compoff::CompoffBackend;
use paragraph::dataset::{collect_platform, DatasetScale, PipelineConfig};
use paragraph::engine::{AdviseReport, AdviseRequest, Engine, SimulatorBackend};
use paragraph::gnn::{GnnBackend, TrainConfig, TrainedModel};
use paragraph::perfsim::Platform;

fn print_report(report: &AdviseReport) {
    println!(
        "  backend={} platform={} candidates={} total={:.2} ms (predict {:.2} ms) cache {}h/{}m",
        report.backend,
        report.platform.name(),
        report.candidates(),
        report.timing.total_ms,
        report.timing.predict_ms,
        report.cache.hits,
        report.cache.misses,
    );
    for prediction in report.rankings.iter().take(3) {
        println!(
            "    {:<28} {:>10.3} ms",
            prediction.label(),
            prediction.predicted_ms
        );
    }
}

fn main() {
    let platform = Platform::SummitV100;

    // 1. The simulator backend needs no training: build and ask.
    println!("simulator backend, MM/matmul, launch sweep derived from the V100:");
    let simulator = Engine::builder()
        .platform(platform)
        .backend(SimulatorBackend::noise_free())
        .cache_capacity(512)
        .build();
    let request = AdviseRequest::catalog("MM/matmul");
    let cold = simulator.advise(&request).expect("advise succeeds");
    print_report(&cold);

    // The engine memoizes parse + graph construction: the same request again
    // runs entirely from cache.
    let warm = simulator.advise(&request).expect("advise succeeds");
    println!(
        "  same request again: {:.2} ms total, cache {}h/{}m",
        warm.timing.total_ms, warm.cache.hits, warm.cache.misses
    );

    // 2. Train the paper's RGAT model and the COMPOFF baseline on a small
    //    V100 dataset, then serve both through the same request shape.
    println!("\ntraining GNN + COMPOFF backends on a reduced V100 dataset ...");
    let dataset = collect_platform(
        platform,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 42,
            noise_sigma: 0.04,
        },
    );
    let (bundle, outcome) = TrainedModel::fit(&dataset, &TrainConfig::fast())
        .expect("fast config trains at least one epoch");
    println!(
        "  gnn validation: RMSE {:.2} ms, normalised {:.4}",
        outcome.rmse_ms, outcome.norm_rmse
    );
    let compoff_model = compoff::train_model(&dataset, &compoff::CompoffConfig::fast());

    let gnn_engine = Engine::builder()
        .platform(platform)
        .backend(GnnBackend::new(bundle, platform))
        .build();
    let compoff_engine = Engine::builder()
        .platform(platform)
        .backend(CompoffBackend::new(compoff_model))
        .build();

    for kernel in ["MM/matmul", "MV/matvec", "Laplace/copy"] {
        println!("\n{kernel}:");
        for engine in [&simulator, &gnn_engine, &compoff_engine] {
            let report = engine
                .advise(&AdviseRequest::catalog(kernel))
                .expect("advise succeeds");
            let best = report.best().expect("non-empty ranking");
            println!(
                "  {:<10} picks {:<28} {:>10.3} ms",
                report.backend,
                best.label(),
                best.predicted_ms
            );
        }
    }

    println!("\nengine-lifetime cache counters:");
    for (name, engine) in [
        ("simulator", &simulator),
        ("gnn", &gnn_engine),
        ("compoff", &compoff_engine),
    ] {
        let counters = engine.cache_counters();
        println!(
            "  {:<10} {} hits / {} misses",
            name, counters.hits, counters.misses
        );
    }
}
