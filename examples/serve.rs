//! The ParaGraph advisor as a service.
//!
//! Starts the `pg-serve` HTTP tier over an engine and serves `POST
//! /advise`, `GET /healthz` and `GET /metrics` until SIGTERM/SIGINT, then
//! drains gracefully (admitted requests finish, the batcher flushes, all
//! threads join) and exits 0.
//!
//! ```text
//! cargo run --release --example serve                        # simulator backend
//! cargo run --release --example serve -- --addr 127.0.0.1:8970
//! cargo run --release --example serve -- --platform summit-v100 \
//!     --model target/models/summit-v100-<hash>.bundle.json    # hot-load a GNN bundle
//! cargo run --release --example serve -- --train-fast         # train a small GNN in-process
//! cargo run --release --example serve -- --workers 8 --max-batch 512 \
//!     --max-wait-ms 2 --max-connections 16384                 # event-loop sizing
//! ```
//!
//! A round trip:
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8970/advise \
//!   -d '{"kernel":{"Catalog":"MM/matmul"},"sizes":null,"budget":"PlatformDefault"}'
//! ```
//!
//! `PARAGRAPH_SERVE_MAX_SECONDS=<n>` bounds the lifetime (the CI smoke
//! step sets it so a wedged server cannot hang the pipeline; SIGTERM is
//! still the ordinary exit path).

use paragraph::engine::Engine;
use paragraph::gnn;
use paragraph::perfsim::Platform;
use paragraph::serve::{install_termination_handler, termination_requested, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let platform = match flag_value(&args, "--platform") {
        None => Platform::SummitV100,
        Some(slug) => Platform::from_slug(&slug).unwrap_or_else(|| {
            paragraph::obs::error!(
                "unknown platform",
                slug = slug,
                known = Platform::ALL.map(|p| p.slug()).join(", ")
            );
            std::process::exit(2);
        }),
    };

    let mut builder = Engine::builder().platform(platform);
    if let Some(path) = flag_value(&args, "--model") {
        let loaded = match gnn::load_bundle(std::path::Path::new(&path)) {
            Ok(loaded) => loaded,
            Err(error) => {
                paragraph::obs::error!("loading model bundle failed", path = path, error = error);
                std::process::exit(2);
            }
        };
        if loaded.trained_on != platform {
            paragraph::obs::error!(
                "bundle/platform mismatch",
                trained_on = loaded.trained_on.name(),
                platform = platform.name()
            );
            std::process::exit(2);
        }
        println!("loaded GNN bundle {} ({path})", loaded.fingerprint);
        builder = builder.backend(loaded.into_backend());
    } else if args.iter().any(|a| a == "--train-fast") {
        println!(
            "training a fast-scale GNN bundle for {}...",
            platform.name()
        );
        let dataset = paragraph::dataset::collect_platform(
            platform,
            &paragraph::dataset::PipelineConfig {
                scale: paragraph::dataset::DatasetScale::Fast,
                ..Default::default()
            },
        );
        let (bundle, _) = gnn::TrainedModel::fit(&dataset, &gnn::TrainConfig::fast())
            .expect("fast training succeeds");
        builder = builder.backend(gnn::GnnBackend::new(bundle, platform));
    }
    let engine = Arc::new(builder.build());

    let parsed_flag = |name: &str| -> Option<u64> {
        flag_value(&args, name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                paragraph::obs::error!("flag expects a number", flag = name, got = v);
                std::process::exit(2);
            })
        })
    };
    let mut config = ServeConfig {
        addr: flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8970".to_string()),
        ..ServeConfig::default()
    };
    if let Some(workers) = parsed_flag("--workers") {
        config.workers = workers.max(1) as usize;
    }
    if let Some(max_batch) = parsed_flag("--max-batch") {
        config.batch.max_batch = max_batch.max(1) as usize;
        config.batch.queue_depth = config.batch.queue_depth.max(config.batch.max_batch * 4);
    }
    if let Some(max_wait_ms) = parsed_flag("--max-wait-ms") {
        config.batch.max_wait = Duration::from_millis(max_wait_ms);
    }
    if let Some(max_connections) = parsed_flag("--max-connections") {
        config.max_connections = max_connections.max(1) as usize;
    }
    install_termination_handler();
    let backend_name = engine.backend_name().to_string();
    let server = match Server::start(engine, config) {
        Ok(server) => server,
        Err(error) => {
            paragraph::obs::error!("binding listener failed", error = error);
            std::process::exit(1);
        }
    };
    println!(
        "pg-serve listening on http://{} ({backend_name} backend, {})",
        server.addr(),
        platform.name()
    );

    let max_lifetime = std::env::var("PARAGRAPH_SERVE_MAX_SECONDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let started = Instant::now();
    loop {
        if termination_requested() {
            paragraph::obs::info!("signal received, draining");
            break;
        }
        if max_lifetime.is_some_and(|limit| started.elapsed() >= limit) {
            paragraph::obs::info!("PARAGRAPH_SERVE_MAX_SECONDS reached, draining");
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let metrics = server.shutdown();
    println!(
        "drained cleanly: {} requests ({} advise ok, {} rejected, {} failed), \
         {} batches ({} coalesced, largest {})",
        metrics.http_requests,
        metrics.advise_ok,
        metrics.advise_rejected,
        metrics.advise_failed,
        metrics.batches,
        metrics.coalesced_batches,
        metrics.max_batch_size,
    );
}
