//! Find the best transformation for every benchmark kernel: the use case the
//! paper motivates — predict each variant's runtime and pick the fastest —
//! driven here through the unified engine with the simulator backend, and by
//! a trained ParaGraph model for one platform.
//!
//! Run with: `cargo run --release --example find_best_variant`

use paragraph::advisor::LaunchConfig;
use paragraph::dataset::{collect_platform, DatasetScale, PipelineConfig};
use paragraph::engine::{AdviseRequest, Engine, SimulatorBackend};
use paragraph::gnn::{self, TrainConfig};
use paragraph::kernels::all_kernels;
use paragraph::perfsim::Platform;

fn main() {
    // Part 1: rank variants per kernel on the V100 through the engine. One
    // engine serves every request, so the frontend cache warms across
    // kernels.
    println!("Best GPU variant per kernel (simulated, NVIDIA V100, 80x128 launch):\n");
    let launch = LaunchConfig {
        teams: 80,
        threads: 128,
    };
    let engine = Engine::builder()
        .platform(Platform::SummitV100)
        .backend(SimulatorBackend::noise_free())
        .build();
    println!(
        "{:<34} {:<18} {:>12}   runner-up",
        "kernel", "best variant", "runtime"
    );
    for kernel in all_kernels() {
        let report = engine
            .advise(&AdviseRequest::catalog(kernel.full_name()).with_launch(launch))
            .expect("catalogue kernels always advise");
        if report.rankings.len() < 2 {
            continue;
        }
        let (best, runner_up) = (&report.rankings[0], &report.rankings[1]);
        println!(
            "{:<34} {:<18} {:>9.2} ms   {} ({:.2} ms)",
            report.kernel,
            best.variant.expect("catalogue request").name(),
            best.predicted_ms,
            runner_up.variant.expect("catalogue request").name(),
            runner_up.predicted_ms
        );
    }

    // Part 2: train a small ParaGraph model on the V100 dataset and check how
    // often its predicted ranking picks the truly fastest variant among the
    // validation points of each kernel/size group.
    println!("\nTraining a small ParaGraph model on a reduced V100 dataset ...");
    let dataset = collect_platform(
        Platform::SummitV100,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 42,
            noise_sigma: 0.04,
        },
    );
    let outcome =
        gnn::train(&dataset, &TrainConfig::fast()).expect("fast config trains at least one epoch");
    println!(
        "validation RMSE {:.2} ms, normalised RMSE {:.4} over {} points",
        outcome.rmse_ms,
        outcome.norm_rmse,
        outcome.validation.len()
    );

    // Group validation predictions by (application, kernel) and check whether
    // the predicted-fastest point is also the actually-fastest point.
    use std::collections::HashMap;
    let mut groups: HashMap<String, Vec<&gnn::PredictionRecord>> = HashMap::new();
    for record in &outcome.validation {
        groups
            .entry(record.application.clone())
            .or_default()
            .push(record);
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for (_, records) in groups.iter().filter(|(_, r)| r.len() >= 3) {
        let best_actual = records
            .iter()
            .min_by(|a, b| a.actual_ms.partial_cmp(&b.actual_ms).unwrap())
            .unwrap();
        let best_predicted = records
            .iter()
            .min_by(|a, b| a.predicted_ms.partial_cmp(&b.predicted_ms).unwrap())
            .unwrap();
        total += 1;
        if best_actual.id == best_predicted.id
            || best_predicted.actual_ms <= 1.5 * best_actual.actual_ms
        {
            correct += 1;
        }
    }
    println!(
        "model-picked candidate within 1.5x of the true fastest in {correct}/{total} application groups"
    );
}
