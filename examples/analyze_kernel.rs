//! Run the static legality analysis over the full kernel catalogue — every
//! Table I kernel × every applicable variant at default sizes — and print a
//! verdict table. Exits non-zero if any shipped variant is rejected as a race
//! (after the documented per-kernel tolerances), which is how CI pins the
//! catalogue as analysis-clean.
//!
//! Run with: `cargo run --release --example analyze_kernel [kernel-full-name]`

use paragraph::advisor::{instantiate, LaunchConfig, Variant};
use paragraph::analyze::{analyze_source_tolerant, catalogue_tolerances, LegalityVerdict};
use paragraph::kernels::all_kernels;

fn main() {
    let filter = std::env::args().nth(1);
    let kernels = all_kernels();
    let launch = LaunchConfig {
        teams: 80,
        threads: 128,
    };

    let mut analysed = 0usize;
    let mut safe = 0usize;
    let mut with_clauses = 0usize;
    let mut unexpected_races = Vec::new();

    for kernel in &kernels {
        let full_name = kernel.full_name();
        if let Some(f) = &filter {
            if !full_name.contains(f.as_str()) {
                continue;
            }
        }
        let sizes = kernel.default_sizes();
        let tolerated = catalogue_tolerances(&full_name);
        for variant in Variant::applicable_variants(kernel) {
            let instance = instantiate(kernel, variant, &sizes, launch);
            let report = analyze_source_tolerant(&instance.source, tolerated);
            analysed += 1;
            let (tag, detail) = match &report.verdict {
                LegalityVerdict::Safe => {
                    safe += 1;
                    ("safe", String::new())
                }
                LegalityVerdict::SafeWithClauses(clauses) => {
                    with_clauses += 1;
                    ("safe+clauses", clauses.join(" "))
                }
                LegalityVerdict::Race(reason) => {
                    unexpected_races.push(format!("{full_name} [{variant:?}]: {reason}"));
                    ("RACE", reason.clone())
                }
            };
            let warnings = report.warnings().count();
            println!(
                "{full_name:<28} {variant:<14} {tag:<12} warnings={warnings} {detail}",
                variant = format!("{variant:?}"),
            );
        }
    }

    println!(
        "\n{analysed} variants analysed: {safe} safe, {with_clauses} safe-with-clauses, {} races",
        unexpected_races.len()
    );
    if !unexpected_races.is_empty() {
        eprintln!("\nunexpected races in shipped catalogue variants:");
        for race in &unexpected_races {
            eprintln!("  {race}");
        }
        std::process::exit(1);
    }
}
