//! Quickstart: parse an OpenMP kernel, build its ParaGraph, inspect the
//! weighted edges, and simulate its runtime on the four accelerators.
//!
//! Run with: `cargo run --release --example quickstart`

use paragraph::advisor::{instantiate, LaunchConfig, Variant};
use paragraph::core::{build, BuilderConfig, EdgeType, Representation};
use paragraph::frontend::parse;
use paragraph::kernels::find_kernel;
use paragraph::perfsim::{measure, NoiseModel, Platform};

fn main() {
    // 1. A small OpenMP kernel (you can paste your own C here).
    let source = r#"
        void saxpy(float *x, float *y) {
            #pragma omp parallel for num_threads(8)
            for (int i = 0; i < 4096; i++) {
                y[i] = y[i] + 2.5 * x[i];
            }
        }
    "#;

    // 2. Parse it with the built-in C/OpenMP frontend.
    let ast = parse(source).expect("the kernel parses");
    println!("parsed {} AST nodes", ast.len());

    // 3. Build the ParaGraph representation (the paper's contribution).
    let config = BuilderConfig::for_representation(Representation::ParaGraph).with_launch(1, 8);
    let graph = build(&ast, &config);
    let stats = graph.stats();
    println!(
        "ParaGraph: {} vertices, {} edges ({} syntax tokens)",
        stats.nodes, stats.edges, stats.token_nodes
    );
    for ty in EdgeType::ALL {
        println!("  {:<10} {}", ty.name(), stats.edges_per_type[ty.index()]);
    }
    println!(
        "largest Child-edge weight: {} (4096 iterations / 8 threads = 512)",
        stats.max_edge_weight
    );

    // 4. Ask the accelerator simulator how one of the Table I kernels behaves
    //    across its six variants on a GPU.
    let mm = find_kernel("MM/matmul").expect("matmul is in the catalogue");
    let sizes = mm.default_sizes();
    let launch = LaunchConfig {
        teams: 80,
        threads: 128,
    };
    println!(
        "\nsimulated runtimes of MM/matmul (N = {:?}):",
        sizes.get("N")
    );
    for platform in Platform::ALL {
        let variant = if platform.is_gpu() {
            Variant::GpuMem
        } else {
            Variant::Cpu
        };
        let lc = if platform.is_gpu() {
            launch
        } else {
            LaunchConfig {
                teams: 1,
                threads: 16,
            }
        };
        let instance = instantiate(&mm, variant, &sizes, lc);
        let m = measure(&instance, platform, &NoiseModel::default()).unwrap();
        println!(
            "  {:<22} {:<16} {:>10.2} ms",
            platform.name(),
            variant.name(),
            m.runtime_ms
        );
    }

    println!("\nNext steps: `cargo run --release --example find_best_variant`,");
    println!("`cargo bench -p pg-bench --bench table3_rmse` to train the GNN.");
}
