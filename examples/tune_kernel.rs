//! Tune a catalogue kernel: search the variant × launch space for the
//! fastest configuration with the engine as cost model, under a hard
//! evaluation budget.
//!
//! ```text
//! cargo run --release --example tune_kernel                       # beam on MM/matmul, V100
//! cargo run --release --example tune_kernel -- --budget 64        # cap the spend
//! cargo run --release --example tune_kernel -- --kernel MV/matvec --platform summit-power9
//! cargo run --release --example tune_kernel -- --strategy hillclimb --seed 7
//! cargo run --release --example tune_kernel -- --strategy exhaustive --densify 4
//! ```
//!
//! The CI pipeline smoke-runs `--budget 64` next to the serve smoke: the
//! example must tune within budget and exit 0.

use paragraph::engine::Engine;
use paragraph::perfsim::Platform;
use paragraph::tune::{Budget, StrategySpec, TuneEngine, TuneRequest};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value `{raw}` for {name}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = flag_value(&args, "--kernel").unwrap_or_else(|| "MM/matmul".to_string());
    let platform = match flag_value(&args, "--platform") {
        None => Platform::SummitV100,
        Some(slug) => Platform::from_slug(&slug).unwrap_or_else(|| {
            eprintln!(
                "error: unknown platform `{slug}` (one of: {})",
                Platform::ALL.map(|p| p.slug()).join(", ")
            );
            std::process::exit(2);
        }),
    };
    let strategy = match flag_value(&args, "--strategy").as_deref() {
        None | Some("beam") => StrategySpec::Beam {
            width: parsed_flag(&args, "--width", 2),
            patience: parsed_flag(&args, "--patience", 1),
        },
        Some("exhaustive") => StrategySpec::Exhaustive,
        Some("hillclimb") => StrategySpec::Hillclimb {
            seed: parsed_flag(&args, "--seed", 42),
            restarts: parsed_flag(&args, "--restarts", 2),
        },
        Some(other) => {
            eprintln!("error: unknown strategy `{other}` (exhaustive | beam | hillclimb)");
            std::process::exit(2);
        }
    };
    let limits = Budget {
        max_evaluations: parsed_flag(&args, "--budget", 4096),
        max_generations: parsed_flag(&args, "--generations", 256),
    };

    let mut request = TuneRequest::catalog(&kernel)
        .with_strategy(strategy)
        .with_limits(limits);
    let densify: usize = parsed_flag(&args, "--densify", 1);
    if densify > 1 {
        request = request.with_budget(platform.default_budget().densified(densify));
    }

    let engine = Engine::builder().platform(platform).build();
    let report = match engine.tune(&request) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!(
        "tuned {} on {} via {} ({} backend)",
        report.kernel,
        report.platform.name(),
        report.strategy,
        report.backend
    );
    println!(
        "  space    : {} variants x {} launches = {} candidates",
        report.space.variants, report.space.launch_points, report.space.candidates
    );
    println!(
        "  spent    : {} evaluations in {} generations ({:.1}% of the space pruned), {:.2} ms wall",
        report.space.evaluated,
        report.generations,
        100.0 * report.space.pruned as f64 / report.space.candidates.max(1) as f64,
        report.wall_ms
    );
    println!("  stopped  : {:?}", report.stop);
    for point in &report.trajectory {
        println!(
            "  gen {:>3}  : best {:.6} ms after {} evaluations",
            point.generation, point.best_ms, point.evaluations
        );
    }
    println!(
        "  best     : {} -> {:.6} ms",
        report.best.label(),
        report.best.predicted_ms
    );

    if report.space.evaluated > limits.max_evaluations {
        eprintln!(
            "error: spent {} evaluations over a budget of {}",
            report.space.evaluated, limits.max_evaluations
        );
        std::process::exit(1);
    }
}
