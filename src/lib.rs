//! # paragraph
//!
//! Umbrella crate of the ParaGraph reproduction. It re-exports the public API
//! of the workspace crates so downstream users can depend on a single crate:
//!
//! * [`engine`] — the unified serving facade: one trait-based prediction API
//!   (`Engine` / `RuntimePredictor`) over the simulator, GNN and COMPOFF
//!   backends, with a memoized frontend,
//! * [`frontend`] — C-subset + OpenMP parser producing Clang-style ASTs,
//! * [`core`] — the ParaGraph weighted graph representation itself,
//! * [`kernels`] — the Table I benchmark applications as source templates,
//! * [`advisor`] — kernel variant generation (cpu / gpu / collapse / mem),
//! * [`analyze`] — static loop-dependence / data-race analysis that gates
//!   every variant the advisor proposes (diagnostics + legality verdicts),
//! * [`perfsim`] — the analytical accelerator simulator used as the runtime
//!   "measurement" step,
//! * [`dataset`] — the end-to-end labelled-dataset pipeline,
//! * [`gnn`] — the RGAT runtime-prediction model and training loop,
//! * [`compoff`] — the COMPOFF baseline cost model,
//! * [`tensor`] — the dense matrix / autodiff / optimiser substrate,
//! * [`tune`] — budgeted search over the variant × launch space with the
//!   engine as cost model (exhaustive / beam / hillclimb),
//! * [`serve`] — the HTTP tier exposing `/advise` and `/tune`.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/engine_advise.rs` for the engine API, and `DESIGN.md` for the
//! full system inventory and the request-path diagram.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The unified prediction engine (`Engine`, `RuntimePredictor`, backends).
pub use pg_engine as engine;

/// The ParaGraph representation (the paper's primary contribution).
pub use paragraph_core as core;

/// Compiler frontend: lexer, parser, AST, symbol resolution, loop analysis.
pub use pg_frontend as frontend;

/// Benchmark kernel catalogue (Table I).
pub use pg_kernels as kernels;

/// OpenMP Advisor substitute: variant generation and pragma rewriting.
pub use pg_advisor as advisor;

/// Static loop-dependence and data-race analysis gating proposed variants.
pub use pg_analyze as analyze;

/// Accelerator performance simulator (Summit/Corona substitute).
pub use pg_perfsim as perfsim;

/// Dataset pipeline: variants → graphs → simulated runtimes.
pub use pg_dataset as dataset;

/// RGAT runtime-prediction model, training loop, metrics.
pub use pg_gnn as gnn;

/// COMPOFF baseline cost model.
pub use pg_compoff as compoff;

/// Observability core: request tracing, stage-latency histograms,
/// structured logging (`/debug/traces`, `paragraph_stage_duration_seconds`).
pub use pg_obs as obs;

/// HTTP serving tier: micro-batching, admission control, model hot-loading.
pub use pg_serve as serve;

/// Budgeted variant-space search over the engine (exhaustive / beam /
/// hillclimb strategies, deterministic seeds, batched frontier evaluation).
pub use pg_tune as tune;

/// Dense matrices, reverse-mode autodiff, Adam, scalers, metrics.
pub use pg_tensor as tensor;

/// Predict the runtime (in milliseconds) of every applicable variant of a
/// kernel on a platform using the accelerator simulator, and return them
/// sorted fastest-first.
///
/// This is a thin compatibility shim over [`engine::Engine`] with the
/// simulator backend; it produces byte-identical results to the original
/// free-function implementation. The candidates are instantiated from the
/// template argument itself (not re-resolved from the catalogue), so custom
/// or modified templates rank exactly as they used to. New code should
/// build an `Engine` (which adds backend choice, launch sweeps, caching and
/// report provenance) and call [`engine::Engine::advise`] — or
/// [`engine::Engine::predict_instances`] for hand-built candidates.
#[deprecated(
    since = "0.2.0",
    note = "use paragraph::engine::Engine::builder() ... .advise(&AdviseRequest::catalog(..)) instead"
)]
pub fn rank_variants_by_simulation(
    kernel: &kernels::KernelTemplate,
    sizes: &std::collections::HashMap<String, i64>,
    platform: perfsim::Platform,
    launch: advisor::LaunchConfig,
) -> Vec<(advisor::Variant, f64)> {
    let eng = engine::Engine::builder()
        .platform(platform)
        .backend(engine::SimulatorBackend::noise_free())
        .build();
    let instances: Vec<advisor::KernelInstance> = advisor::Variant::applicable_variants(kernel)
        .into_iter()
        .filter(|v| v.is_gpu() == platform.is_gpu())
        .map(|variant| advisor::instantiate(kernel, variant, sizes, launch))
        .collect();
    let mut ranked: Vec<(advisor::Variant, f64)> = eng
        .predict_instances(&instances)
        .into_iter()
        .zip(&instances)
        .filter_map(|(prediction, instance)| prediction.ok().map(|ms| (instance.variant, ms)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn rank_variants_produces_sorted_gpu_candidates() {
        let mm = kernels::find_kernel("MM/matmul").unwrap();
        let ranked = rank_variants_by_simulation(
            &mm,
            &mm.default_sizes(),
            perfsim::Platform::SummitV100,
            advisor::LaunchConfig {
                teams: 80,
                threads: 128,
            },
        );
        assert_eq!(
            ranked.len(),
            4,
            "four GPU variants for a collapsible kernel"
        );
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(ranked.iter().all(|(v, _)| v.is_gpu()));
    }

    #[test]
    fn rank_variants_cpu_platform_uses_cpu_variants() {
        let mv = kernels::find_kernel("MV/matvec").unwrap();
        let ranked = rank_variants_by_simulation(
            &mv,
            &mv.default_sizes(),
            perfsim::Platform::CoronaEpyc7401,
            advisor::LaunchConfig {
                teams: 1,
                threads: 16,
            },
        );
        assert_eq!(
            ranked.len(),
            1,
            "matvec is not collapsible: only the plain cpu variant"
        );
        assert!(!ranked[0].0.is_gpu());
    }
}
